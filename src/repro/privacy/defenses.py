"""Publisher-side defenses that weaken fuzzy trajectory linking.

Each defense is a deterministic-or-seeded transform over a
:class:`~repro.core.trajectory.Trajectory`, applied database-wide via
:meth:`~repro.core.database.TrajectoryDatabase.map`.  FTL's evidence is
the (time gap, implied speed) joint of mutual segments, so a defense
works by blurring time, blurring space, or deleting records:

* :class:`TemporalCloaking` rounds timestamps to a window (a record
  published at 12:07 becomes "somewhere in [12:00, 12:15)"), destroying
  the short-gap mutual segments that carry most discrimination;
* :class:`SpatialCloaking` generalises locations to a grid cell centre
  (k-anonymity-style), making incompatibility judgements coarser;
* :class:`GaussianPerturbation` adds location noise (geo-
  indistinguishability-style);
* :class:`RecordSuppression` publishes each record only with some
  probability (less data, fewer mutual segments).

The "distortion" each defense reports is the utility loss a data
analyst experiences: mean metres of location error and mean seconds of
timestamp error, per published record.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


class Defense:
    """Interface: transform one trajectory; report per-record distortion."""

    #: Human-readable knob value, filled by subclasses.
    strength: float

    def apply(self, traj: Trajectory, rng: np.random.Generator) -> Trajectory:
        raise NotImplementedError

    def apply_db(
        self, db: TrajectoryDatabase, rng: np.random.Generator
    ) -> TrajectoryDatabase:
        """The defense applied to every trajectory of a database."""
        return db.map(lambda t: self.apply(t, rng))

    def spatial_distortion_m(self) -> float:
        """Expected per-record location error introduced, in metres."""
        return 0.0

    def temporal_distortion_s(self) -> float:
        """Expected per-record timestamp error introduced, in seconds."""
        return 0.0


class TemporalCloaking(Defense):
    """Round each timestamp down to a ``window_s``-second boundary."""

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ValidationError(f"window_s must be positive, got {window_s}")
        self._window_s = float(window_s)
        self.strength = self._window_s

    def apply(self, traj: Trajectory, rng: np.random.Generator) -> Trajectory:
        ts = np.floor(traj.ts / self._window_s) * self._window_s
        return Trajectory(ts, traj.xs, traj.ys, traj.traj_id, sort=True)

    def temporal_distortion_s(self) -> float:
        # Uniform within the window: mean error is half the window.
        return self._window_s / 2.0

    def __repr__(self) -> str:
        return f"TemporalCloaking(window_s={self._window_s})"


class SpatialCloaking(Defense):
    """Generalise each location to the centre of a ``cell_m`` grid cell."""

    def __init__(self, cell_m: float) -> None:
        if cell_m <= 0:
            raise ValidationError(f"cell_m must be positive, got {cell_m}")
        self._cell_m = float(cell_m)
        self.strength = self._cell_m

    def apply(self, traj: Trajectory, rng: np.random.Generator) -> Trajectory:
        half = self._cell_m / 2.0
        xs = np.floor(traj.xs / self._cell_m) * self._cell_m + half
        ys = np.floor(traj.ys / self._cell_m) * self._cell_m + half
        return Trajectory(traj.ts, xs, ys, traj.traj_id)

    def spatial_distortion_m(self) -> float:
        # Mean distance from a uniform point in a square to its centre:
        # ~0.3826 * side.
        return 0.3826 * self._cell_m

    def __repr__(self) -> str:
        return f"SpatialCloaking(cell_m={self._cell_m})"


class GaussianPerturbation(Defense):
    """Add isotropic Gaussian noise of ``sigma_m`` metres per axis."""

    def __init__(self, sigma_m: float) -> None:
        if sigma_m < 0:
            raise ValidationError(f"sigma_m must be >= 0, got {sigma_m}")
        self._sigma_m = float(sigma_m)
        self.strength = self._sigma_m

    def apply(self, traj: Trajectory, rng: np.random.Generator) -> Trajectory:
        if len(traj) == 0 or self._sigma_m == 0:
            return traj
        xs = traj.xs + rng.normal(0.0, self._sigma_m, len(traj))
        ys = traj.ys + rng.normal(0.0, self._sigma_m, len(traj))
        return Trajectory(traj.ts, xs, ys, traj.traj_id)

    def spatial_distortion_m(self) -> float:
        # Mean of a Rayleigh(sigma) distance: sigma * sqrt(pi/2).
        return self._sigma_m * float(np.sqrt(np.pi / 2.0))

    def __repr__(self) -> str:
        return f"GaussianPerturbation(sigma_m={self._sigma_m})"


class RecordSuppression(Defense):
    """Publish each record only with probability ``1 - suppress_rate``."""

    def __init__(self, suppress_rate: float) -> None:
        if not 0.0 <= suppress_rate < 1.0:
            raise ValidationError(
                f"suppress_rate must be in [0, 1), got {suppress_rate}"
            )
        self._suppress_rate = float(suppress_rate)
        self.strength = self._suppress_rate

    def apply(self, traj: Trajectory, rng: np.random.Generator) -> Trajectory:
        return traj.downsample(1.0 - self._suppress_rate, rng)

    def __repr__(self) -> str:
        return f"RecordSuppression(suppress_rate={self._suppress_rate})"
