"""Exact sparse solvers over a :class:`~repro.assign.graph.CostGraph`.

The blocked edge graph decomposes into small connected components
(queries and candidates linked by shared edges).  A maximum-weight
matching never crosses components, so each component is solved
independently and exactly:

* ``sparse`` — :func:`scipy.optimize.linear_sum_assignment` on the
  component's dense sub-block, zero-padded for missing edges.  Every
  kept edge has positive weight, so a rectangular LSA over the padded
  block attains exactly the maximum-weight matching (padding cells
  contribute 0, i.e. "unmatched"); matched zero cells are dropped
  afterwards.  This is the FishPy n-rook formulation.
* ``greedy`` — the 1/2-approximation, taking edges in
  ``(-score, query_index, candidate_index)`` order; the fallback when
  scipy is absent (``FTL_NO_SCIPY=1`` forces it, for testing).
* ``reference`` — the original dense networkx solver
  (:func:`repro.core.assignment.optimal_assignment`) run per
  component: exact, kept behind the new API for parity testing.

Determinism: edges enter every backend in one canonical order —
``(-score, query_index, candidate_index)`` for the ordered consumers,
``(query_index, candidate_index)`` for the matrix layout — and
components are solved in ascending smallest-query-index order, so a
given graph always produces the same matching on the same backend.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.assign.graph import CostGraph
from repro.errors import ValidationError
from repro.obs import span

BACKENDS = ("auto", "sparse", "greedy", "reference")

#: Canonical edge order shared by every backend (ties broken by index).
TIE_BREAK = "(-score, query_index, candidate_index)"


def scipy_available() -> bool:
    """Whether the scipy LSA solver can be used (env-gated for tests)."""
    if os.environ.get("FTL_NO_SCIPY"):
        return False
    try:
        import scipy.optimize  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(backend: str = "auto") -> str:
    """Map ``auto`` to the best available solver; validate the rest."""
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown assignment backend {backend!r}; known: {BACKENDS}"
        )
    if backend == "auto":
        return "sparse" if scipy_available() else "greedy"
    if backend == "sparse" and not scipy_available():
        raise ValidationError(
            "backend 'sparse' requires scipy; use 'auto' for the "
            "greedy fallback"
        )
    return backend


@dataclass(frozen=True)
class GlobalAssignment:
    """A solved one-to-one matching over a :class:`CostGraph`."""

    pairs: Mapping[object, object]  # query id -> candidate id
    scores: Mapping[object, float]  # query id -> matched edge score
    total_score: float
    backend: str
    n_components: int
    n_edges: int
    n_queries: int
    n_candidates: int

    def __len__(self) -> int:
        return len(self.pairs)

    def accuracy(self, truth: Mapping[object, object]) -> float:
        """Fraction of assigned queries whose candidate is correct."""
        if not self.pairs:
            return 0.0
        hits = sum(1 for q, c in self.pairs.items() if truth.get(q) == c)
        return hits / len(self.pairs)

    def unassigned(self, query_ids: Sequence[object]) -> list[object]:
        """The subset of ``query_ids`` left unmatched."""
        return [qid for qid in query_ids if qid not in self.pairs]

    def to_dict(self) -> dict:
        return {
            "matches": [
                {
                    "query_id": qid,
                    "candidate_id": cid,
                    "score": self.scores[qid],
                }
                for qid, cid in self.pairs.items()
            ],
            "total_score": self.total_score,
            "solver": self.backend,
            "n_components": self.n_components,
            "n_edges": self.n_edges,
            "n_queries": self.n_queries,
            "n_candidates": self.n_candidates,
        }


@dataclass(frozen=True)
class _Component:
    """One connected component of the bipartite edge graph."""

    query_indices: tuple[int, ...]  # ascending
    candidate_indices: tuple[int, ...]  # ascending
    edges: tuple[tuple[int, int, float], ...]  # canonical (qi, ci) order


def split_components(graph: CostGraph) -> list[_Component]:
    """Connected components of the edge graph, by union-find.

    Isolated queries/candidates (no surviving edge) belong to no
    component — they can never be matched.  Components are returned in
    ascending order of their smallest query index, so downstream
    iteration is deterministic.
    """
    with span("component_split"):
        parent: dict[int, int] = {}

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        n_q = len(graph.query_ids)
        for qi, ci, _ in graph.edges:
            for node in (qi, n_q + ci):
                parent.setdefault(node, node)
            union(qi, n_q + ci)

        grouped: dict[int, list[tuple[int, int, float]]] = {}
        for edge in graph.edges:
            grouped.setdefault(find(edge[0]), []).append(edge)

        components = []
        for root in sorted(grouped):
            edges = grouped[root]
            components.append(
                _Component(
                    query_indices=tuple(sorted({e[0] for e in edges})),
                    candidate_indices=tuple(sorted({e[1] for e in edges})),
                    edges=tuple(edges),
                )
            )
    return components


def _solve_sparse(comp: _Component) -> list[tuple[int, int, float]]:
    from scipy.optimize import linear_sum_assignment

    row_of = {qi: r for r, qi in enumerate(comp.query_indices)}
    col_of = {ci: c for c, ci in enumerate(comp.candidate_indices)}
    block = np.zeros((len(row_of), len(col_of)), dtype=np.float64)
    for qi, ci, score in comp.edges:
        block[row_of[qi], col_of[ci]] = score
    rows, cols = linear_sum_assignment(block, maximize=True)
    matched = []
    for r, c in zip(rows, cols):
        if block[r, c] > 0.0:  # drop padding cells: "unmatched"
            matched.append(
                (comp.query_indices[r], comp.candidate_indices[c], block[r, c])
            )
    return matched


def _solve_greedy(comp: _Component) -> list[tuple[int, int, float]]:
    ordered = sorted(comp.edges, key=lambda e: (-e[2], e[0], e[1]))
    taken_q: set[int] = set()
    taken_c: set[int] = set()
    matched = []
    for qi, ci, score in ordered:
        if qi in taken_q or ci in taken_c:
            continue
        taken_q.add(qi)
        taken_c.add(ci)
        matched.append((qi, ci, score))
    return matched


def _solve_reference(comp: _Component) -> list[tuple[int, int, float]]:
    # The pre-subsystem dense solver, fed edges in the same canonical
    # (-score, query_index, candidate_index) order as the greedy path.
    from repro.core.assignment import optimal_assignment

    ordered = sorted(comp.edges, key=lambda e: (-e[2], e[0], e[1]))
    result = optimal_assignment(ordered, min_score=0.0)
    matched = [
        (qi, ci, score)
        for qi, ci, score in comp.edges
        if result.pairs.get(qi) == ci
    ]
    return matched


_COMPONENT_SOLVERS = {
    "sparse": _solve_sparse,
    "greedy": _solve_greedy,
    "reference": _solve_reference,
}


def solve(graph: CostGraph, backend: str = "auto") -> GlobalAssignment:
    """Solve the global one-to-one assignment over a cost graph."""
    resolved = resolve_backend(backend)
    components = split_components(graph)
    solver = _COMPONENT_SOLVERS[resolved]
    pairs: dict[object, object] = {}
    scores: dict[object, float] = {}
    total = 0.0
    with span("solve"):
        for comp in components:
            for qi, ci, score in sorted(solver(comp)):
                pairs[graph.query_ids[qi]] = graph.candidate_ids[ci]
                scores[graph.query_ids[qi]] = score
                total += score
    return GlobalAssignment(
        pairs=pairs,
        scores=scores,
        total_score=total,
        backend=resolved,
        n_components=len(components),
        n_edges=graph.n_edges,
        n_queries=len(graph.query_ids),
        n_candidates=len(graph.candidate_ids),
    )
