"""Sparse global one-to-one assignment over blocked pair graphs.

The investigation scenario solved at pool scale: build a sparse cost
graph over only the pairs spatio-temporal blocking keeps
(:mod:`repro.assign.graph`), score every edge in one batch pass
through the :class:`~repro.core.engine.LinkEngine`, split into
connected components and solve each exactly
(:mod:`repro.assign.solver`), and compare the matching's precision@1
against independent per-query ranking
(:mod:`repro.assign.evaluate`).  Exposed as ``ftl assign`` on the CLI
and ``/v1/assign`` on the serving daemon; see ``docs/assignment.md``.
"""

from repro.assign.evaluate import (
    AssignmentEvaluation,
    evaluate_assignment,
    independent_top1,
    precision_at_1,
)
from repro.assign.graph import (
    PERMISSIVE_LINK_OPTIONS,
    CostGraph,
    build_cost_graph,
    graph_from_link_results,
)
from repro.assign.solver import (
    BACKENDS,
    TIE_BREAK,
    GlobalAssignment,
    resolve_backend,
    scipy_available,
    solve,
    split_components,
)

__all__ = [
    "AssignmentEvaluation",
    "BACKENDS",
    "CostGraph",
    "GlobalAssignment",
    "PERMISSIVE_LINK_OPTIONS",
    "TIE_BREAK",
    "build_cost_graph",
    "evaluate_assignment",
    "graph_from_link_results",
    "independent_top1",
    "precision_at_1",
    "resolve_backend",
    "scipy_available",
    "solve",
    "split_components",
]
