"""Precision@1 evaluation: global assignment vs independent ranking.

The claim behind the global formulation: when both databases cover the
same population, awarding each candidate to at most one query resolves
the conflicts per-query ranking cannot see, so precision@1 should not
drop — and typically rises.  :func:`evaluate_assignment` measures both
on a synthetic scenario over the *same* scored edge set:

* **independent** — each evaluated query takes its best-scored edge
  (the engine's ranking restricted to edges above ``min_score``);
* **assignment** — each evaluated query takes its globally assigned
  candidate (unassigned counts as a miss).

Evaluated queries are those with a ground-truth partner present in the
candidate database, mirroring :mod:`repro.pipeline.precision_eval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.assign.graph import (
    PERMISSIVE_LINK_OPTIONS,
    CostGraph,
    build_cost_graph,
)
from repro.assign.solver import GlobalAssignment, solve
from repro.config import FTLConfig
from repro.core.engine import LinkEngine, LinkOptions
from repro.errors import ValidationError
from repro.pipeline.experiment import fit_model_pair
from repro.store.stindex import SpatioTemporalIndex
from repro.synth.scenario import ScenarioPair


def independent_top1(graph: CostGraph) -> dict[object, object]:
    """Each query's best edge by the engine's exact ranking key.

    The engine ranks by ``-score`` with pool-order tie-break; on the
    canonical graph that is ``(-score, candidate_index)``.
    """
    best: dict[object, tuple[float, int]] = {}
    for qi, ci, score in graph.edges:
        qid = graph.query_ids[qi]
        cur = best.get(qid)
        if cur is None or (-score, ci) < cur:
            best[qid] = (-score, ci)
    return {
        qid: graph.candidate_ids[ci] for qid, (_neg, ci) in best.items()
    }


def precision_at_1(
    predicted: Mapping[object, object],
    truth: Mapping[object, object],
    evaluated: Sequence[object],
) -> float:
    """Fraction of ``evaluated`` queries predicted correctly."""
    if not evaluated:
        return 0.0
    hits = sum(1 for qid in evaluated if predicted.get(qid) == truth.get(qid))
    return hits / len(evaluated)


@dataclass(frozen=True)
class AssignmentEvaluation:
    """Precision@1 of global assignment vs independent ranking."""

    graph: CostGraph
    assignment: GlobalAssignment
    evaluated_queries: tuple[object, ...]
    precision_independent: float
    precision_assignment: float

    def to_dict(self) -> dict:
        return {
            "n_queries": len(self.graph.query_ids),
            "n_candidates": len(self.graph.candidate_ids),
            "n_evaluated": len(self.evaluated_queries),
            "n_edges": self.graph.n_edges,
            "n_scored_pairs": self.graph.n_scored_pairs,
            "density": self.graph.density,
            "n_assigned": len(self.assignment),
            "n_components": self.assignment.n_components,
            "total_score": self.assignment.total_score,
            "solver": self.assignment.backend,
            "precision_at_1": {
                "independent": self.precision_independent,
                "assignment": self.precision_assignment,
            },
        }


def evaluate_assignment(
    pair: ScenarioPair,
    config: FTLConfig,
    rng: np.random.Generator,
    *,
    backend: str = "auto",
    min_score: float = 1e-6,
    use_blocking: bool = True,
    options: LinkOptions | None = None,
    query_ids: Sequence[object] | None = None,
) -> AssignmentEvaluation:
    """Fit, score, solve and evaluate one synthetic scenario.

    ``use_blocking`` builds a :class:`SpatioTemporalIndex` over the
    candidate database (reach horizon = ``config.horizon_s``, the
    fully-conservative setting) and scores only blocked pairs; off, it
    scores the dense pool — the service-pool semantics.
    """
    mr, ma = fit_model_pair(pair, config, rng)
    engine = LinkEngine(mr, ma)
    queries = (
        list(pair.p_db)
        if query_ids is None
        else [pair.p_db[qid] for qid in query_ids]
    )
    if not queries:
        raise ValidationError("no queries to evaluate")
    blocking = (
        SpatioTemporalIndex.build(
            pair.q_db,
            vmax_kph=config.vmax_kph,
            reach_gap_s=config.horizon_s,
        )
        if use_blocking
        else None
    )
    graph = build_cost_graph(
        engine,
        queries,
        pool=None if use_blocking else list(pair.q_db),
        blocking=blocking,
        options=options if options is not None else PERMISSIVE_LINK_OPTIONS,
        min_score=min_score,
    )
    assignment = solve(graph, backend=backend)
    in_candidates = {t.traj_id for t in pair.q_db}
    evaluated = tuple(
        q.traj_id
        for q in queries
        if pair.truth.get(q.traj_id) in in_candidates
    )
    return AssignmentEvaluation(
        graph=graph,
        assignment=assignment,
        evaluated_queries=evaluated,
        precision_independent=precision_at_1(
            independent_top1(graph), pair.truth, evaluated
        ),
        precision_assignment=precision_at_1(
            assignment.pairs, pair.truth, evaluated
        ),
    )
