"""Sparse cost-graph construction for global one-to-one assignment.

Per-query FTL ranks candidates independently; the investigation
scenario wants a *global* matching where each candidate is awarded to
at most one query.  Solving that over the full |Q| x |C| score matrix
is quadratic-dense; SLIM-style blocked linkage solves it only over the
pairs the spatio-temporal blocking keeps.

:func:`build_cost_graph` scores every kept (query, candidate) pair in
**one** pass through :meth:`LinkEngine.link_requests` — the same batch
path, profile cache, Poisson-Binomial memo and kernel backends as
serving — and records every pair whose Eq. 2 score clears
``min_score`` as a weighted edge.  Eq. 2 scores are per-pair (they do
not depend on the rest of the pool), so the blocked edges carry
exactly the scores a dense pass would give; blocking only *removes*
edges that never cleared the blocking screen.

The resulting :class:`CostGraph` is the single input of
:mod:`repro.assign.solver`; edges are stored canonically sorted by
``(query_index, candidate_index)`` so every solver sees the same
deterministic structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.engine import LinkEngine, LinkOptions, LinkRequest, LinkResult
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.obs import span

#: Score-all edge semantics: alpha1=0 admits every pair to phase 2 and
#: alpha2=1 only drops p2 == 1 pairs, whose Eq. 2 score is exactly 0 —
#: below any ``min_score >= 0`` threshold anyway.  With these options
#: the graph's edges equal :func:`repro.core.assignment.score_all_pairs`
#: (the dense path's raw material); the subsystem's entry points default
#: to them so the solver sees every positive-score edge and decides
#: globally.  Pass an explicit ``options`` to restrict edges to
#: decision-passing pairs instead.
PERMISSIVE_LINK_OPTIONS = LinkOptions(
    method="alpha-filter", alpha1=0.0, alpha2=1.0
)


@dataclass(frozen=True)
class CostGraph:
    """A sparse bipartite score graph: the input of the solvers.

    ``edges[k] = (query_index, candidate_index, score)`` with indices
    into ``query_ids`` / ``candidate_ids``; edges are sorted by
    ``(query_index, candidate_index)`` (canonical order) and every
    score is ``> min_score >= 0``.
    """

    query_ids: tuple[object, ...]
    candidate_ids: tuple[object, ...]
    edges: tuple[tuple[int, int, float], ...]
    min_score: float
    n_scored_pairs: int

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    @property
    def n_possible_pairs(self) -> int:
        return len(self.query_ids) * len(self.candidate_ids)

    @property
    def density(self) -> float:
        """Kept edges over the dense |Q| x |C| pair count."""
        possible = self.n_possible_pairs
        return len(self.edges) / possible if possible else 0.0

    def triples(self) -> Iterator[tuple[object, object, float]]:
        """Edges as ``(query_id, candidate_id, score)`` triples."""
        for qi, ci, score in self.edges:
            yield self.query_ids[qi], self.candidate_ids[ci], score


def _unique_ids(trajectories: Sequence[Trajectory], what: str) -> list[object]:
    ids = [t.traj_id for t in trajectories]
    if len(set(ids)) != len(ids):
        raise ValidationError(f"duplicate {what} trajectory ids")
    return ids


def graph_from_link_results(
    results: Sequence[LinkResult],
    query_ids: Sequence[object],
    candidate_ids: Sequence[object],
    min_score: float,
    n_scored_pairs: int,
) -> CostGraph:
    """Assemble a :class:`CostGraph` from already-scored link results.

    ``results[i]`` is the (untruncated) ranking of ``query_ids[i]``.
    Shared between :func:`build_cost_graph` and the service's
    scatter-gather path, so both produce byte-identical graphs from
    identical scores.
    """
    if min_score < 0:
        raise ValidationError(f"min_score must be >= 0, got {min_score}")
    if len(results) != len(query_ids):
        raise ValidationError(
            f"{len(results)} results for {len(query_ids)} queries"
        )
    index_of = {cid: i for i, cid in enumerate(candidate_ids)}
    if len(index_of) != len(candidate_ids):
        raise ValidationError("duplicate candidate trajectory ids")
    edges: list[tuple[int, int, float]] = []
    for qi, result in enumerate(results):
        for cand in result.candidates:
            if cand.score > min_score:
                edges.append((qi, index_of[cand.candidate_id], cand.score))
    edges.sort(key=lambda e: (e[0], e[1]))
    return CostGraph(
        query_ids=tuple(query_ids),
        candidate_ids=tuple(candidate_ids),
        edges=tuple(edges),
        min_score=min_score,
        n_scored_pairs=n_scored_pairs,
    )


def build_cost_graph(
    engine: LinkEngine,
    queries: Sequence[Trajectory],
    pool: Iterable[Trajectory] | None = None,
    *,
    blocking=None,
    options: LinkOptions | None = None,
    min_score: float = 1e-6,
    min_overlap_s: float = 0.0,
) -> CostGraph:
    """Score every kept (query, candidate) pair in one engine pass.

    Parameters
    ----------
    engine:
        A fitted :class:`LinkEngine`; its kernel backend and profile
        cache are reused unchanged.
    queries:
        The query side (unique ids required — they key the matching).
    pool:
        Dense candidate pool; every query is scored against all of it
        (minus what ``blocking`` prunes, when given).
    blocking:
        Anything with ``candidates_for(query, min_overlap_s)`` —
        typically a :class:`repro.store.stindex.SpatioTemporalIndex`.
        When given, each query is scored only against its blocked
        candidate set; ``pool`` may be omitted.
    options:
        Per-pair scoring options; ``top_k`` is forced to ``None``
        (a truncated ranking would silently drop edges).
    min_score:
        Strictly-greater threshold for keeping an edge; the same
        contract as :mod:`repro.core.assignment`.
    """
    if min_score < 0:
        raise ValidationError(f"min_score must be >= 0, got {min_score}")
    if pool is None and blocking is None:
        raise ValidationError("need a candidate pool or a blocking index")
    queries = list(queries)
    query_ids = _unique_ids(queries, "query")

    # Candidate indexing is fixed *before* scoring (pool order, then
    # first-seen blocking order) so edge indices never depend on scores.
    index_of: dict[object, int] = {}
    candidate_ids: list[object] = []
    pool_list: list[Trajectory] | None = None
    if pool is not None:
        pool_list = list(pool)
        for cid in _unique_ids(pool_list, "candidate"):
            index_of[cid] = len(candidate_ids)
            candidate_ids.append(cid)

    resolved = options if options is not None else engine.options
    if resolved.top_k is not None:
        resolved = resolved.with_updates(top_k=None)

    requests: list[LinkRequest] = []
    n_scored = 0
    if blocking is not None:
        for query in queries:
            kept = blocking.candidates_for(query, min_overlap_s)
            for cand in kept:
                if cand.traj_id not in index_of:
                    index_of[cand.traj_id] = len(candidate_ids)
                    candidate_ids.append(cand.traj_id)
            n_scored += len(kept)
            requests.append(
                LinkRequest(
                    query=query, candidates=tuple(kept), options=resolved
                )
            )
    else:
        assert pool_list is not None
        n_scored = len(queries) * len(pool_list)
        requests = [
            LinkRequest(query=query, options=resolved) for query in queries
        ]

    with span("edge_scoring"):
        results = engine.link_requests(requests, default_pool=pool_list)

    return graph_from_link_results(
        results, query_ids, candidate_ids, min_score, n_scored
    )
