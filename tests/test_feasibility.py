"""Section VI feasibility predictions."""

import math

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.models import ACCEPTANCE, REJECTION, BucketCounts, CompatibilityModel
from repro.errors import ValidationError
from repro.stats.feasibility import (
    DECISIVE_EVIDENCE_NATS,
    assess_feasibility,
    informative_fraction,
    informative_segments_per_day,
    theoretical_gap_weights,
)


def model_with_prob(kind, prob, config):
    counts = BucketCounts.zeros(config.n_buckets)
    counts.total[:] = 1000
    counts.incompatible[:] = int(round(prob * 1000))
    return CompatibilityModel(kind, counts, config)


@pytest.fixture
def config():
    return FTLConfig(smoothing=0.0, min_bucket_count=1)


@pytest.fixture
def models(config):
    return (
        model_with_prob(REJECTION, 0.02, config),
        model_with_prob(ACCEPTANCE, 0.8, config),
    )


class TestInformativeFraction:
    def test_exponential_formula(self):
        lam_p, lam_q = 1e-4, 2e-4  # per second
        h = 3600.0
        expected = 1 - math.exp(-(lam_p + lam_q) * h)
        assert informative_fraction(lam_p, lam_q, h) == pytest.approx(expected)

    def test_monotone_in_horizon(self):
        f1 = informative_fraction(1e-4, 1e-4, 600.0)
        f2 = informative_fraction(1e-4, 1e-4, 3600.0)
        assert f2 > f1

    def test_bounds(self):
        assert 0 < informative_fraction(1e-5, 1e-5, 60.0) < 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            informative_fraction(0.0, 1.0, 60.0)
        with pytest.raises(ValidationError):
            informative_fraction(1e-4, 1e-4, 0.0)


class TestSegmentsPerDay:
    def test_matches_simulation(self, rng):
        from repro.stats.theory import simulate_mutual_segment_counts

        lam_p_h, lam_q_h = 0.8, 0.4  # per hour
        horizon = FTLConfig().horizon_s
        predicted = informative_segments_per_day(lam_p_h, lam_q_h, horizon)
        # Simulate in units of days.
        lam_p_d, lam_q_d = lam_p_h * 24, lam_q_h * 24
        sim = simulate_mutual_segment_counts(lam_p_d, lam_q_d, 2000, rng)
        # All mutual segments, then thin to in-horizon analytically.
        frac = informative_fraction(
            lam_p_h / 3600, lam_q_h / 3600, horizon
        )
        assert predicted == pytest.approx(sim.mean() * frac, rel=0.1)

    def test_increases_with_rates(self):
        h = 3600.0
        low = informative_segments_per_day(0.2, 0.2, h)
        high = informative_segments_per_day(2.0, 2.0, h)
        assert high > low


class TestGapWeights:
    def test_normalised(self, config):
        weights = theoretical_gap_weights(0.8, 0.4, config)
        assert weights.shape == (config.n_buckets,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0)

    def test_decreasing_for_exponential(self, config):
        weights = theoretical_gap_weights(0.8, 0.4, config)
        # Ignore bucket 0 (half-width interval); from bucket 1 on the
        # exponential density makes weights strictly decreasing.
        assert np.all(np.diff(weights[1:]) <= 1e-15)

    def test_higher_rates_concentrate_low_buckets(self, config):
        slow = theoretical_gap_weights(0.2, 0.2, config)
        fast = theoretical_gap_weights(5.0, 5.0, config)
        assert fast[:5].sum() > slow[:5].sum()

    def test_validation(self, config):
        with pytest.raises(ValidationError):
            theoretical_gap_weights(0.0, 0.0, config)


class TestAssessFeasibility:
    def test_report_fields(self, models):
        mr, ma = models
        report = assess_feasibility(0.8, 0.4, mr, ma)
        assert report.informative_segments_per_day > 0
        assert report.evidence_per_segment_nats > 0
        assert report.evidence_per_day_nats == pytest.approx(
            report.informative_segments_per_day
            * report.evidence_per_segment_nats
        )
        assert report.days_to_decisive == pytest.approx(
            DECISIVE_EVIDENCE_NATS / report.evidence_per_day_nats
        )
        assert "days to decisive" in report.summary()

    def test_denser_services_need_fewer_days(self, models):
        mr, ma = models
        sparse = assess_feasibility(0.2, 0.1, mr, ma)
        dense = assess_feasibility(2.0, 1.0, mr, ma)
        assert dense.days_to_decisive < sparse.days_to_decisive

    def test_indistinguishable_models_infeasible(self, config):
        mr = model_with_prob(REJECTION, 0.5, config)
        ma = model_with_prob(ACCEPTANCE, 0.5, config)
        report = assess_feasibility(1.0, 1.0, mr, ma)
        assert report.evidence_per_segment_nats == pytest.approx(0.0, abs=1e-9)
        assert math.isinf(report.days_to_decisive)

    def test_target_validation(self, models):
        mr, ma = models
        with pytest.raises(ValidationError):
            assess_feasibility(1.0, 1.0, mr, ma, target_nats=0.0)

    def test_prediction_consistent_with_linking(self, small_pair, fitted_models):
        """The feasibility estimate should call the small scenario easy."""
        mr, ma = fitted_models
        # The small_pair services run at 0.8 and 0.4 events/hour.
        report = assess_feasibility(0.8, 0.4, mr, ma)
        # The scenario spans 5 days and links almost perfectly, so the
        # predicted days-to-decisive must be of that order (not 100x).
        assert report.days_to_decisive < 15.0
