"""SQLite trajectory store."""

import numpy as np
import pytest

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import DataFormatError, ValidationError
from repro.io.sqlite_store import SQLiteTrajectoryStore


@pytest.fixture
def db() -> TrajectoryDatabase:
    rng = np.random.default_rng(0)
    trajs = []
    for i in range(3):
        n = 20
        ts = np.sort(rng.uniform(0, 1000.0, n))
        trajs.append(
            Trajectory(ts, rng.uniform(0, 100, n), rng.uniform(0, 100, n), f"t{i}")
        )
    return TrajectoryDatabase(trajs, name="demo")


@pytest.fixture
def store():
    with SQLiteTrajectoryStore(":memory:") as s:
        yield s


class TestSaveLoad:
    def test_round_trip(self, store, db):
        n_points = store.save(db, "demo")
        assert n_points == db.total_records()
        loaded = store.load("demo")
        assert sorted(map(str, loaded.ids())) == sorted(map(str, db.ids()))
        for traj in db:
            other = loaded[str(traj.traj_id)]
            assert np.allclose(traj.ts, other.ts)
            assert np.allclose(traj.xs, other.xs)

    def test_multiple_databases(self, store, db):
        store.save(db, "one")
        store.save(db, "two")
        assert store.names() == ["one", "two"]

    def test_duplicate_name_rejected(self, store, db):
        store.save(db, "demo")
        with pytest.raises(ValidationError):
            store.save(db, "demo")

    def test_replace(self, store, db):
        store.save(db, "demo")
        smaller = TrajectoryDatabase([db["t0"]])
        store.save(smaller, "demo", replace=True)
        assert len(store.load("demo")) == 1

    def test_empty_name_rejected(self, store, db):
        with pytest.raises(ValidationError):
            store.save(db, "")

    def test_missing_database(self, store):
        with pytest.raises(DataFormatError):
            store.load("ghost")

    def test_count_points(self, store, db):
        store.save(db, "demo")
        assert store.count_points("demo") == db.total_records()


class TestTimeWindow:
    def test_window_filters_records(self, store, db):
        store.save(db, "demo")
        windowed = store.load("demo", start_t=200.0, end_t=400.0)
        for traj in windowed:
            assert np.all((traj.ts >= 200.0) & (traj.ts < 400.0))

    def test_window_drops_empty_trajectories(self, store, db):
        store.save(db, "demo")
        assert len(store.load("demo", start_t=1e9)) == 0


class TestDelete:
    def test_delete_removes(self, store, db):
        store.save(db, "demo")
        store.delete("demo")
        assert store.names() == []

    def test_delete_missing_raises(self, store):
        with pytest.raises(ValidationError):
            store.delete("ghost")

    def test_delete_cascades_points(self, store, db):
        store.save(db, "demo")
        store.delete("demo")
        store.save(db, "demo")
        assert store.count_points("demo") == db.total_records()


class TestFileBacked:
    def test_persists_across_connections(self, db, tmp_path):
        path = tmp_path / "store.db"
        with SQLiteTrajectoryStore(path) as store:
            store.save(db, "demo")
        with SQLiteTrajectoryStore(path) as store:
            assert store.names() == ["demo"]
            assert store.count_points("demo") == db.total_records()

    def test_iter_trajectories_removed(self, db, tmp_path):
        with SQLiteTrajectoryStore(tmp_path / "s.db") as store:
            store.save(db, "demo")
            assert not hasattr(store, "iter_trajectories")
            ids = [t.traj_id for t in store.load("demo")]
        assert sorted(ids) == ["t0", "t1", "t2"]
