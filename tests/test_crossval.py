"""Held-out generalisation evaluation."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.errors import ValidationError
from repro.pipeline.crossval import format_holdout, run_holdout


class TestRunHoldout:
    def test_models_generalise_on_synthetic(self, small_pair):
        rng = np.random.default_rng(0)
        result = run_holdout(small_pair, FTLConfig(), rng, test_fraction=0.3)
        # Held-out users must still link well: the models capture city
        # geometry + noise, not individual identities.
        assert result.test_perceptiveness >= 0.6
        assert abs(result.generalisation_gap) <= 0.35
        assert result.n_test_queries >= 1
        assert result.n_train_queries >= result.n_test_queries

    def test_selectiveness_reported(self, small_pair):
        rng = np.random.default_rng(1)
        result = run_holdout(small_pair, FTLConfig(), rng)
        assert 0.0 <= result.train_selectiveness <= 1.0
        assert 0.0 <= result.test_selectiveness <= 1.0

    def test_fraction_validation(self, small_pair):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            run_holdout(small_pair, FTLConfig(), rng, test_fraction=0.0)
        with pytest.raises(ValidationError):
            run_holdout(small_pair, FTLConfig(), rng, test_fraction=1.0)

    def test_too_few_queries_rejected(self, small_pair):
        from repro.synth.scenario import ScenarioPair

        rng = np.random.default_rng(0)
        tiny_truth = dict(list(small_pair.truth.items())[:2])
        tiny = ScenarioPair(small_pair.p_db, small_pair.q_db, tiny_truth)
        with pytest.raises(ValidationError):
            run_holdout(tiny, FTLConfig(), rng)

    def test_format(self, small_pair):
        rng = np.random.default_rng(0)
        result = run_holdout(small_pair, FTLConfig(), rng)
        text = format_holdout(result)
        assert "train" in text and "test" in text
        assert "generalisation gap" in text

    def test_deterministic_given_rng(self, small_pair):
        a = run_holdout(small_pair, FTLConfig(), np.random.default_rng(7))
        b = run_holdout(small_pair, FTLConfig(), np.random.default_rng(7))
        assert a == b
