"""Record data model."""

import math

import pytest

from repro.core.records import Record, timediff
from repro.errors import ValidationError


class TestConstruction:
    def test_fields(self):
        r = Record(10.0, 1.0, 2.0)
        assert (r.t, r.x, r.y) == (10.0, 1.0, 2.0)

    def test_location(self):
        assert Record(0.0, 3.0, 4.0).location == (3.0, 4.0)

    def test_frozen(self):
        r = Record(0.0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            r.t = 5.0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_nonfinite_rejected(self, bad):
        with pytest.raises(ValidationError):
            Record(bad, 0.0, 0.0)
        with pytest.raises(ValidationError):
            Record(0.0, bad, 0.0)
        with pytest.raises(ValidationError):
            Record(0.0, 0.0, bad)

    def test_non_number_rejected(self):
        with pytest.raises(ValidationError):
            Record("0", 0.0, 0.0)


class TestOrdering:
    def test_orders_by_time(self):
        assert Record(1.0, 9.0, 9.0) < Record(2.0, 0.0, 0.0)

    def test_sorting_gives_time_order(self):
        records = [Record(3.0, 0, 0), Record(1.0, 0, 0), Record(2.0, 0, 0)]
        assert [r.t for r in sorted(records)] == [1.0, 2.0, 3.0]

    def test_equality(self):
        assert Record(1.0, 2.0, 3.0) == Record(1.0, 2.0, 3.0)
        assert Record(1.0, 2.0, 3.0) != Record(1.0, 2.0, 4.0)

    def test_hashable(self):
        assert len({Record(1.0, 2.0, 3.0), Record(1.0, 2.0, 3.0)}) == 1


class TestOperations:
    def test_time_shifted(self):
        r = Record(10.0, 1.0, 2.0).time_shifted(5.0)
        assert r.t == 15.0 and r.x == 1.0

    def test_timediff_absolute(self):
        a, b = Record(10.0, 0, 0), Record(4.0, 0, 0)
        assert timediff(a, b) == 6.0
        assert timediff(b, a) == 6.0

    def test_timediff_zero(self):
        r = Record(10.0, 0, 0)
        assert timediff(r, r) == 0.0
