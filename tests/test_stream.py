"""Continuous streaming linkage: delta log, union probe, standing queries.

Three contracts pin the subsystem (module docstrings of
:mod:`repro.stream.deltas` and :mod:`repro.stream.standing`):

* the :class:`StreamIndexView` union probe preserves the main index's
  property-tested superset contract across any interleaving of flushed
  delta blocks and sliding-window evictions;
* :func:`merge_index_deltas` folds the log into a main index that
  never drops an id a full rebuild would keep, and leaves the log
  empty at the store's current generation;
* standing-query rankings are **bit-identical** to a from-scratch
  engine run over the same pool state at every point of an
  ingest/evict sequence, while re-scoring strictly fewer pairs than a
  full recompute.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import TrajectoryDatabase
from repro.core.engine import LinkEngine, LinkOptions
from repro.core.prefilter import TimeOverlapPrefilter
from repro.core.trajectory import Trajectory
from repro.errors import (
    RemoteServiceError,
    StaleIndexError,
    StoreFormatError,
    ValidationError,
)
from repro.geo.units import kph_to_mps
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, ServerConfig
from repro.service.state import Metrics
from repro.store import TrajectoryStore
from repro.store.stindex import SpatioTemporalIndex
from repro.stream import (
    DeltaLog,
    StreamIndexView,
    StreamRuntime,
    merge_index_deltas,
)
from repro.stream.standing import StandingQueryRegistry

RANKING = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)

#: Index parameters shared by main index and delta blocks in these tests.
PARAMS = {"cell_size_m": 5_000.0, "vmax_kph": 80.0, "reach_gap_s": 300.0}


def _reachable(query, candidate, vmax_kph, reach_gap_s) -> bool:
    """Brute force: any record pair with dt <= gap and dist <= vmax*dt."""
    vmax = kph_to_mps(vmax_kph)
    for tq, xq, yq in zip(query.ts, query.xs, query.ys):
        dt = np.abs(candidate.ts - tq)
        dist = np.hypot(candidate.xs - xq, candidate.ys - yq)
        if np.any((dt <= reach_gap_s) & (dist <= vmax * dt)):
            return True
    return False


def _random_traj(rng, n, traj_id, t_lo=0.0, t_hi=2000.0, extent=30_000.0):
    return Trajectory(
        np.sort(rng.uniform(t_lo, t_hi, n)),
        rng.uniform(-extent, extent, n),
        rng.uniform(-extent, extent, n),
        traj_id,
    )


def _random_db(rng, n_traj) -> TrajectoryDatabase:
    db = TrajectoryDatabase(name="stream-prop")
    for i in range(n_traj):
        db.add(_random_traj(rng, int(rng.integers(1, 6)), f"c{i}"))
    return db


def _flush_block(store, log, deltas):
    """Append ``deltas`` to the store and log the matching delta block."""
    store.append(deltas)
    return log.append_block(deltas, generation=store.generation, **PARAMS)


# ----------------------------------------------------------------------
# Delta log bookkeeping
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_block_roundtrip(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 3))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        assert log.entries() == []
        block = _flush_block(store, log, [_random_traj(rng, 4, "new0")])
        assert block is not None
        [(gen, kind, path)] = log.entries()
        assert (gen, kind) == (store.generation, "block")
        assert path.name == f"delta-{store.generation:06d}"
        assert log.covered_entries() == log.entries()
        view = StreamIndexView.open(store)
        assert view.n_blocks == 1
        assert "new0" in {str(i) for i in view.ids_for(store.load()["new0"])}

    def test_duplicate_block_generation_rejected(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 2))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        delta = _random_traj(rng, 3, "dup")
        _flush_block(store, log, [delta])
        with pytest.raises(ValidationError, match="already exists"):
            log.append_block([delta], generation=store.generation, **PARAMS)

    def test_empty_deltas_write_nothing(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 2))
        log = DeltaLog(store)
        assert log.append_block(
            [Trajectory.empty("hollow")], generation=7, **PARAMS
        ) is None
        assert log.entries() == []

    def test_eviction_marker_keeps_coverage_contiguous(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 3))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        _flush_block(store, log, [_random_traj(rng, 3, "n0")])
        assert store.expire_before(500.0) >= 0
        log.record_eviction(store.generation, 500.0)
        kinds = [kind for _gen, kind, _path in log.covered_entries()]
        assert kinds == ["block", "evict"]
        # the view opens fine across the eviction generation
        assert StreamIndexView.open(store).n_blocks == 1

    def test_coverage_gap_raises_stale(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 3))
        store.build_index(**PARAMS)
        # Out-of-band append: a generation with no block and no marker.
        store.append([_random_traj(rng, 3, "rogue")])
        with pytest.raises(StaleIndexError, match="does not cover"):
            DeltaLog(store).covered_entries()
        with pytest.raises(StaleIndexError):
            StreamIndexView.open(store)

    def test_no_main_index_raises_format_error(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 2))
        with pytest.raises(StoreFormatError, match="no blocking index"):
            DeltaLog(store).covered_entries()

    def test_prune_through_drops_folded_entries(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 2))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        _flush_block(store, log, [_random_traj(rng, 2, "a")])
        store.expire_before(100.0)
        log.record_eviction(store.generation, 100.0)
        assert log.prune_through(store.generation) == 2
        assert log.entries() == []


# ----------------------------------------------------------------------
# Union-probe superset contract (hypothesis)
# ----------------------------------------------------------------------
class TestUnionProbeSuperset:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_initial=st.integers(1, 5),
        n_flushes=st.integers(1, 3),
        min_overlap_s=st.sampled_from([0.0, 50.0, 400.0]),
        evict=st.booleans(),
    )
    def test_union_probe_never_drops_reachable_candidate(
        self, tmp_path_factory, seed, n_initial, n_flushes, min_overlap_s,
        evict,
    ):
        rng = np.random.default_rng(seed)
        root = tmp_path_factory.mktemp("union")
        store = TrajectoryStore.create(root / "s", _random_db(rng, n_initial))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        for flush in range(n_flushes):
            deltas = [_random_traj(rng, int(rng.integers(1, 5)),
                                   f"f{flush}")]
            if rng.random() < 0.5:
                # record delta onto an already-stored id: the merged
                # window, not either structure's own, must screen it.
                existing = str(rng.choice(list(store.load().ids())))
                deltas.append(_random_traj(
                    rng, int(rng.integers(1, 4)), existing
                ))
            _flush_block(store, log, deltas)
        if evict:
            before = store.generation
            store.expire_before(float(rng.uniform(0.0, 1500.0)))
            if store.generation != before:
                log.record_eviction(store.generation, 0.0)
        view = StreamIndexView.open(store)
        db = store.load()
        nq = int(rng.integers(1, 5))
        query = _random_traj(rng, nq, "q")
        kept = {str(i) for i in view.ids_for(query, min_overlap_s)}
        prefilter = TimeOverlapPrefilter(min_overlap_s)
        for candidate in db:
            required = prefilter.keep(query, candidate) and _reachable(
                query, candidate, PARAMS["vmax_kph"], PARAMS["reach_gap_s"]
            )
            if required:
                assert str(candidate.traj_id) in kept, (
                    f"union probe dropped reachable candidate "
                    f"{candidate.traj_id} (seed={seed}, flushes={n_flushes},"
                    f" evict={evict})"
                )

    def test_fully_evicted_id_filtered_at_probe_time(self, rng, tmp_path):
        early = Trajectory([0.0, 50.0], [0.0, 10.0], [0.0, 10.0], "early")
        late = Trajectory([900.0, 950.0], [0.0, 10.0], [0.0, 10.0], "late")
        store = TrajectoryStore.create(
            tmp_path / "s", TrajectoryDatabase([early, late], name="d")
        )
        store.build_index(**PARAMS)
        store.expire_before(500.0)
        DeltaLog(store).record_eviction(store.generation, 500.0)
        view = StreamIndexView.open(store)
        assert len(view) == 1
        probe = Trajectory([0.0, 1000.0], [0.0, 0.0], [0.0, 0.0], "q")
        assert {str(i) for i in view.ids_for(probe)} == {"late"}


# ----------------------------------------------------------------------
# Incremental merge
# ----------------------------------------------------------------------
class TestMergeIndexDeltas:
    def _grown_store(self, rng, root):
        store = TrajectoryStore.create(root / "s", _random_db(rng, 4))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        _flush_block(store, log, [_random_traj(rng, 4, "g0")])
        _flush_block(store, log, [
            _random_traj(rng, 3, "g1"),
            _random_traj(rng, 2, "c0"),  # record delta on a stored id
        ])
        store.expire_before(300.0)
        log.record_eviction(store.generation, 300.0)
        return store

    def test_merge_matches_full_rebuild_id_universe(self, rng, tmp_path):
        store = self._grown_store(rng, tmp_path)
        merged = merge_index_deltas(store)
        rebuilt = SpatioTemporalIndex.build(store.load(), **PARAMS)
        assert set(merged.id_list) == set(rebuilt.id_list)
        # Merged windows are conservative after eviction: per query the
        # merged index may admit extra candidates but never fewer.
        for query in store.load():
            assert set(map(str, rebuilt.ids_for(query))) <= set(
                map(str, merged.ids_for(query))
            )

    def test_merge_prunes_log_and_stamps_generation(self, rng, tmp_path):
        store = self._grown_store(rng, tmp_path)
        merge_index_deltas(store)
        assert DeltaLog(store).entries() == []
        # open_index validates the persisted generation against the store
        assert len(store.open_index()) == len(store.load())
        assert StreamIndexView.open(store).n_blocks == 0

    def test_merge_noop_when_already_current(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 3))
        store.build_index(**PARAMS)
        index = merge_index_deltas(store)
        assert set(index.id_list) == set(map(str, store.load().ids()))

    def test_merge_refuses_parameter_drift(self, rng, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 2))
        store.build_index(**PARAMS)
        log = DeltaLog(store)
        store.append([_random_traj(rng, 3, "drift")])
        drifted = dict(PARAMS, cell_size_m=123.0)
        log.append_block([_random_traj(rng, 3, "drift")],
                         generation=store.generation, **drifted)
        with pytest.raises(StaleIndexError, match="parameters"):
            merge_index_deltas(store)


# ----------------------------------------------------------------------
# Sliding-window eviction semantics
# ----------------------------------------------------------------------
class TestExpireBoundary:
    def _store(self, tmp_path):
        traj = Trajectory([0.0, 100.0, 200.0], [0.0, 1.0, 2.0],
                          [0.0, 1.0, 2.0], "t")
        return TrajectoryStore.create(
            tmp_path / "s", TrajectoryDatabase([traj], name="d")
        )

    def test_record_at_exact_cutoff_survives(self, tmp_path):
        store = self._store(tmp_path)
        assert store.expire_before(100.0) == 1
        loaded = store.load()["t"]
        assert list(loaded.ts) == [100.0, 200.0]
        assert store.manifest.retain_after == 100.0

    def test_compact_materialises_drop_and_clears_watermark(self, tmp_path):
        store = self._store(tmp_path)
        store.expire_before(100.0)
        store.compact()
        assert store.manifest.retain_after == 0.0
        assert list(store.load()["t"].ts) == [100.0, 200.0]

    def test_runtime_evict_noop_below_watermark(self, tmp_path,
                                                fitted_models):
        mr, ma = fitted_models
        store = self._store(tmp_path)
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(store.load())
        runtime = StreamRuntime(store, engine, pool, RANKING)
        assert runtime.evict_before(100.0) == 1
        gen = store.generation
        # watermark already covers this cutoff: no commit, no log entry
        assert runtime.evict_before(50.0) == 0
        assert store.generation == gen
        assert len(runtime.delta_log.entries()) == 1

    def test_runtime_evict_at_window_start_drops_nothing(self, tmp_path,
                                                         fitted_models):
        mr, ma = fitted_models
        store = self._store(tmp_path)
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(store.load())
        runtime = StreamRuntime(store, engine, pool, RANKING)
        # cutoff exactly at the earliest record: nothing strictly older
        assert runtime.evict_before(0.0) == 0
        assert len(store.load()["t"]) == 3


# ----------------------------------------------------------------------
# Atomic flush pipeline: append + delta block under one critical section
# ----------------------------------------------------------------------
class TestAppendFlushAtomicity:
    def test_concurrent_flushes_keep_coverage_contiguous(
        self, rng, tmp_path, fitted_models
    ):
        """Racing session flushes must never mis-stamp a delta block.

        Before the store append moved inside the runtime lock, two
        concurrent flushes could both read the second append's
        generation: one block got the wrong stamp (or raised
        "already exists"), leaving a permanent coverage gap that turned
        every union-view open and background merge into a
        StaleIndexError.
        """
        mr, ma = fitted_models
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 3))
        store.build_index(**PARAMS)
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(store.load())
        runtime = StreamRuntime(store, engine, pool, RANKING)
        n_threads = 8
        deltas = [
            [_random_traj(np.random.default_rng(i), 3, f"race{i}")]
            for i in range(n_threads)
        ]
        barrier = threading.Barrier(n_threads)
        errors: list[Exception] = []

        def flush(i):
            barrier.wait()
            try:
                runtime.append_flush(deltas[i])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=flush, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        log = runtime.delta_log
        assert len(log.entries()) == n_threads
        # one block per committed generation, no gaps, distinct stamps
        assert log.covered_entries() == log.entries()
        gens = [gen for gen, _kind, _path in log.entries()]
        assert len(set(gens)) == n_threads
        view = StreamIndexView.open(store)
        assert view.n_blocks == n_threads
        assert {f"race{i}" for i in range(n_threads)} <= {
            str(t.traj_id) for t in pool
        }

    def test_append_flush_returns_segment_and_skips_empty(
        self, rng, tmp_path, fitted_models
    ):
        mr, ma = fitted_models
        store = TrajectoryStore.create(tmp_path / "s", _random_db(rng, 2))
        store.build_index(**PARAMS)
        engine = LinkEngine(mr, ma, options=RANKING)
        runtime = StreamRuntime(store, engine, list(store.load()), RANKING)
        flushed, segment = runtime.append_flush([Trajectory.empty("void")])
        assert (flushed, segment) == (0, None)
        assert runtime.delta_log.entries() == []
        flushed, segment = runtime.append_flush(
            [_random_traj(rng, 3, "fresh")]
        )
        assert flushed == 3
        assert segment == store.manifest.segments[-1].dirname


# ----------------------------------------------------------------------
# Standing queries: the bit-identity invariant
# ----------------------------------------------------------------------
def _fresh_ranking(fitted_models, query, options, pool):
    """A from-scratch engine run (no warm caches) in wire form."""
    mr, ma = fitted_models
    engine = LinkEngine(mr, ma, options=options)
    result = engine.link_batch([query], pool)[0]
    return [c.to_dict() for c in result.candidates]


class TestStandingBitIdentity:
    def _runtime(self, fitted_models, small_pair, root, metrics=None):
        mr, ma = fitted_models
        ids = sorted(str(t.traj_id) for t in small_pair.q_db)[:6]
        store = TrajectoryStore.create(
            root / "s", [small_pair.q_db[i] for i in ids]
        )
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(store.load())
        runtime = StreamRuntime(
            store, engine, pool, RANKING, metrics=metrics
        )
        return store, pool, runtime

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_rankings_match_fresh_engine_at_every_step(
        self, tmp_path_factory, fitted_models, small_pair, seed
    ):
        rng = np.random.default_rng(seed)
        root = tmp_path_factory.mktemp("bitid")
        store, pool, runtime = self._runtime(fitted_models, small_pair, root)
        queries = [
            small_pair.p_db[qid]
            for qid in sorted(small_pair.truth)[:2]
        ]
        topk = RANKING.with_updates(top_k=3)
        runtime.register_query(queries[0], query_id="full")
        runtime.register_query(queries[1], query_id="topk", options=topk)
        t_lo = min(float(t.ts[0]) for t in pool)
        t_hi = max(float(t.ts[-1]) for t in pool)
        for step in range(3):
            if rng.random() < 0.7:
                # flush: record deltas onto existing ids plus one new id
                target = str(rng.choice([t.traj_id for t in pool]))
                deltas = [
                    _random_traj(rng, 3, target, t_lo=t_lo, t_hi=t_hi),
                    _random_traj(rng, 2, f"new{step}", t_lo=t_lo, t_hi=t_hi),
                ]
                store.append(deltas)
                runtime.after_flush(deltas)
            else:
                cutoff = float(rng.uniform(t_lo, t_lo + (t_hi - t_lo) / 3))
                runtime.evict_before(cutoff)
            current = list(store.load())
            snap_full = runtime.registry.snapshot("full")
            assert snap_full["ranking"] == _fresh_ranking(
                fitted_models, queries[0], RANKING, current
            ), f"full ranking diverged at step {step} (seed={seed})"
            snap_topk = runtime.registry.snapshot("topk")
            assert snap_topk["ranking"] == _fresh_ranking(
                fitted_models, queries[1], topk, current
            ), f"top-k ranking diverged at step {step} (seed={seed})"

    def test_rescores_strictly_fewer_pairs_than_full_recompute(
        self, fitted_models, small_pair, tmp_path
    ):
        metrics = Metrics()
        store, pool, runtime = self._runtime(
            fitted_models, small_pair, tmp_path, metrics=metrics
        )
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        runtime.register_query(query, query_id="q")
        # A flush touching exactly one candidate, inside the query's
        # window: the dilated probe names that id, never the whole pool.
        lone = str(pool[0].traj_id)
        t0 = float(query.ts[0])
        deltas = [Trajectory(
            [t0, t0 + 60.0], [0.0, 5.0], [0.0, 5.0], lone
        )]
        store.append(deltas)
        runtime.after_flush(deltas)
        rescored = metrics.counter("standing_rescored_pairs_total")
        n_updates = runtime.registry.counts()["n_updates"]
        assert n_updates == 1 and rescored >= 1
        full_equivalent = n_updates * len(store.load())
        assert rescored < full_equivalent, (
            f"incremental path re-scored {rescored} pairs, full recompute "
            f"would be {full_equivalent}"
        )
        assert metrics.counter("stream_flushes_total") == 1

    def test_top_member_full_eviction_drops_it_from_ranking(
        self, fitted_models, tmp_path
    ):
        mr, ma = fitted_models
        # "self" is the query's own records: it ranks first.  All of its
        # records predate the cutoff while "other" survives.
        self_t = Trajectory(
            [0.0, 60.0, 120.0], [0.0, 50.0, 100.0], [0.0, 50.0, 100.0],
            "self",
        )
        other = Trajectory(
            [500.0, 560.0], [4_000.0, 4_050.0], [0.0, 50.0], "other"
        )
        store = TrajectoryStore.create(
            tmp_path / "s", TrajectoryDatabase([self_t, other], name="d")
        )
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(store.load())
        runtime = StreamRuntime(store, engine, pool, RANKING)
        query = Trajectory(self_t.ts, self_t.xs, self_t.ys, "q")
        options = RANKING.with_updates(top_k=1)
        snap = runtime.register_query(query, query_id="w", options=options)
        assert [c["candidate_id"] for c in snap["ranking"]] == ["self"]
        runtime.evict_before(200.0)
        snap = runtime.registry.snapshot("w")
        assert snap["ranking"] == _fresh_ranking(
            fitted_models, query, options, list(store.load())
        )
        assert all(c["candidate_id"] != "self" for c in snap["ranking"])


# ----------------------------------------------------------------------
# Watch event buffers: resume, resync, timeout
# ----------------------------------------------------------------------
class TestWatchEvents:
    def _registry(self, fitted_models, small_pair, event_buffer=2):
        mr, ma = fitted_models
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(small_pair.q_db)[:4]
        registry = StandingQueryRegistry(
            engine, pool, RANKING, horizon_s=engine.config.horizon_s,
            event_buffer=event_buffer,
        )
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        registry.register(query, query_id="w")
        return registry, pool

    def test_resume_returns_only_new_events(self, fitted_models, small_pair):
        registry, pool = self._registry(fitted_models, small_pair,
                                        event_buffer=16)
        got = registry.wait_events("w", since=0)
        assert [e["seq"] for e in got["events"]] == [1]
        assert not got["resync"]
        registry.apply_update(evicted_ids=[str(pool[0].traj_id)])
        got = registry.wait_events("w", since=1)
        assert [e["seq"] for e in got["events"]] == [2]
        assert got["events"][0]["kind"] == "update"
        assert registry.wait_events("w", since=got["seq"])["events"] == []

    def test_stale_cursor_gets_resync_snapshot(self, fitted_models,
                                               small_pair):
        registry, pool = self._registry(fitted_models, small_pair,
                                        event_buffer=2)
        for _ in range(4):  # overflow the 2-event buffer
            registry.apply_update(evicted_ids=[str(pool[0].traj_id)])
        got = registry.wait_events("w", since=1)
        assert got["resync"]
        [snapshot] = got["events"]
        assert snapshot["kind"] == "snapshot"
        assert snapshot["seq"] == got["seq"] == 5

    def test_longpoll_wakes_on_update(self, fitted_models, small_pair):
        registry, pool = self._registry(fitted_models, small_pair,
                                        event_buffer=16)
        results = []

        def waiter():
            results.append(registry.wait_events("w", since=1, timeout_s=30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        registry.apply_update(evicted_ids=[str(pool[0].traj_id)])
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert [e["seq"] for e in results[0]["events"]] == [2]

    def test_unknown_query_rejected(self, fitted_models, small_pair):
        registry, _pool = self._registry(fitted_models, small_pair)
        with pytest.raises(ValidationError, match="unknown standing query"):
            registry.wait_events("nope", since=0)

    def test_close_wakes_parked_watcher(self, fitted_models, small_pair):
        # Daemon drain: close() must release long-polls immediately
        # instead of letting them run out their full wait_ms.
        registry, _pool = self._registry(fitted_models, small_pair,
                                         event_buffer=16)
        results = []

        def waiter():
            results.append(registry.wait_events("w", since=1, timeout_s=30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        registry.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results[0]["events"] == []


# ----------------------------------------------------------------------
# End to end over HTTP: /v1/queries + /v1/watch on a store-backed daemon
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_engine(fitted_models):
    mr, ma = fitted_models
    return LinkEngine(mr, ma, options=RANKING)


@pytest.fixture()
def stream_server(stream_engine, small_pair, tmp_path):
    ids = sorted(str(t.traj_id) for t in small_pair.q_db)[:6]
    store = TrajectoryStore.create(
        tmp_path / "watch-store", [small_pair.q_db[i] for i in ids]
    )
    pool = list(store.load())
    config = ServerConfig(port=0, max_wait_ms=1.0, session_ttl_s=3600.0)
    with BackgroundServer(stream_engine, pool, config=config,
                          store=store) as background:
        yield background


class TestWatchEndToEnd:
    def test_register_flush_watch_evict_roundtrip(self, stream_server,
                                                  small_pair):
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        near = [
            (float(t), float(x), float(y))
            for t, x, y in zip(query.ts[:3], query.xs[:3], query.ys[:3])
        ]
        with ServiceClient(*stream_server.address) as c:
            snap = c.register_query(query, query_id="q0")
            assert snap["seq"] == 1
            assert [q["query_id"] for q in c.queries()] == ["q0"]

            c.ingest("sess", candidate_records={"cX": near},
                     decide=False, flush=True)
            got = c.watch("q0", since=1, wait_ms=5_000)
            assert got["seq"] == 2 and not got["resync"]
            [event] = got["events"]
            assert event["kind"] == "update"
            assert "cX" in event["changed"]
            # acceptance invariant on the wire: the standing ranking is
            # bit-identical to a from-scratch /v1/link right now
            linked = c.link(query)
            assert event["ranking"] == [
                cand.to_dict() for cand in linked.candidates
            ]

            # a cutoff just past the pool's earliest record is
            # guaranteed to evict something, so seq must advance
            ids = sorted(str(t.traj_id) for t in small_pair.q_db)[:6]
            t0 = min(float(small_pair.q_db[i].ts[0]) for i in ids)
            c.ingest("sess", expire_before=t0 + 0.5, decide=False)
            got = c.watch("q0", since=2, wait_ms=5_000)
            assert got["seq"] == 3

            health = c.healthz()
            assert health["standing_queries"] == 1
            assert health["index_delta_blocks"] >= 1
            text = c.metrics_text()
            assert "ftl_standing_queries 1" in text
            assert "ftl_standing_staleness_seconds_count" in text
            assert "ftl_stream_flushes_total 1" in text

            assert c.unregister_query("q0")["removed"] is True
            assert c.queries() == []
            assert c.unregister_query("q0")["removed"] is False

    def test_watch_unknown_query_is_structured_400(self, stream_server):
        with ServiceClient(*stream_server.address) as c:
            with pytest.raises(RemoteServiceError) as err:
                c.watch("ghost")
            assert err.value.status == 400
            assert err.value.payload["error"]["type"] == "ValidationError"

    def test_standing_queries_need_store_backed_daemon(self, stream_engine,
                                                       small_pair):
        pool = list(small_pair.q_db)[:4]
        config = ServerConfig(port=0, max_wait_ms=1.0)
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        with BackgroundServer(stream_engine, pool, config=config) as server:
            with ServiceClient(*server.address) as c:
                with pytest.raises(RemoteServiceError) as err:
                    c.register_query(query, query_id="q")
                assert err.value.status == 409
                assert "--store" in err.value.payload["error"]["message"]

    def test_bad_watch_params_rejected(self, stream_server):
        with ServiceClient(*stream_server.address) as c:
            status_codes = []
            for path in ("/v1/watch", "/v1/watch?query=q&since=x",
                         "/v1/watch?query=q&wait_ms=-1"):
                with pytest.raises(RemoteServiceError) as err:
                    c.request("GET", path)
                status_codes.append(err.value.status)
            assert status_codes == [400, 400, 400]
