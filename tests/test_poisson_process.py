"""Poisson process samplers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.poisson_process import (
    count_label_changes,
    merge_processes,
    sample_inhomogeneous_poisson,
    sample_poisson_process,
)


class TestHomogeneous:
    def test_sorted_and_in_window(self, rng):
        times = sample_poisson_process(2.0, 100.0, rng, start=50.0)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 50.0) & (times < 150.0))

    def test_mean_count(self, rng):
        counts = [
            sample_poisson_process(3.0, 10.0, rng).size for _ in range(300)
        ]
        assert np.mean(counts) == pytest.approx(30.0, rel=0.1)

    def test_zero_rate(self, rng):
        assert sample_poisson_process(0.0, 100.0, rng).size == 0

    def test_zero_duration(self, rng):
        assert sample_poisson_process(5.0, 0.0, rng).size == 0

    def test_negative_inputs_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_poisson_process(-1.0, 1.0, rng)
        with pytest.raises(ValidationError):
            sample_poisson_process(1.0, -1.0, rng)

    def test_interarrival_times_exponential(self, rng):
        times = sample_poisson_process(5.0, 2000.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(0.2, rel=0.1)


class TestInhomogeneous:
    def test_constant_rate_matches_homogeneous(self, rng):
        counts = [
            sample_inhomogeneous_poisson(
                lambda t: np.full_like(t, 2.0), 2.0, 50.0, rng
            ).size
            for _ in range(200)
        ]
        assert np.mean(counts) == pytest.approx(100.0, rel=0.1)

    def test_zero_rate_function(self, rng):
        times = sample_inhomogeneous_poisson(
            lambda t: np.zeros_like(t), 5.0, 100.0, rng
        )
        assert times.size == 0

    def test_step_profile_concentrates_mass(self, rng):
        def rate_fn(t):
            return np.where(np.asarray(t) < 50.0, 4.0, 0.0)

        times = sample_inhomogeneous_poisson(rate_fn, 4.0, 100.0, rng)
        assert np.all(times < 50.0)

    def test_rate_above_max_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_inhomogeneous_poisson(
                lambda t: np.full_like(t, 10.0), 2.0, 100.0, rng
            )

    def test_negative_max_rate_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_inhomogeneous_poisson(lambda t: t, -1.0, 10.0, rng)


class TestMerge:
    def test_merged_sorted(self):
        times, labels = merge_processes(
            np.array([1.0, 3.0]), np.array([2.0, 4.0])
        )
        assert list(times) == [1.0, 2.0, 3.0, 4.0]
        assert list(labels) == [0, 1, 0, 1]

    def test_tie_keeps_first_process_first(self):
        _times, labels = merge_processes(np.array([5.0]), np.array([5.0]))
        assert list(labels) == [0, 1]

    def test_empty_sides(self):
        times, labels = merge_processes(np.array([]), np.array([1.0]))
        assert list(times) == [1.0]
        assert list(labels) == [1]


class TestLabelChanges:
    def test_counts(self):
        assert count_label_changes(np.array([0, 1, 1, 0, 1])) == 3

    def test_no_changes(self):
        assert count_label_changes(np.array([0, 0, 0])) == 0

    def test_short_sequences(self):
        assert count_label_changes(np.array([0])) == 0
        assert count_label_changes(np.array([])) == 0
