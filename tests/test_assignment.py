"""Global one-to-one assignment linking."""

import numpy as np
import pytest

from repro.core.assignment import (
    Assignment,
    assign_queries,
    greedy_assignment,
    optimal_assignment,
    score_all_pairs,
)
from repro.errors import ValidationError

TOY_SCORES = [
    ("p1", "c1", 0.9),
    ("p1", "c2", 0.8),
    ("p2", "c1", 0.85),
    ("p2", "c2", 0.1),
]


class TestGreedy:
    def test_takes_best_first(self):
        result = greedy_assignment(TOY_SCORES)
        # Greedy: (p1,c1,0.9) first, then p2 can only take c2.
        assert result.pairs == {"p1": "c1", "p2": "c2"}
        assert result.total_score == pytest.approx(1.0)

    def test_min_score_excludes(self):
        result = greedy_assignment(TOY_SCORES, min_score=0.5)
        assert result.pairs == {"p1": "c1"}  # p2's only remaining option < 0.5

    def test_empty(self):
        result = greedy_assignment([])
        assert len(result) == 0
        assert result.total_score == 0.0

    def test_negative_min_score_rejected(self):
        with pytest.raises(ValidationError):
            greedy_assignment(TOY_SCORES, min_score=-1.0)

    def test_one_to_one(self):
        rng = np.random.default_rng(0)
        scores = [
            (f"p{i}", f"c{j}", float(rng.random()))
            for i in range(10)
            for j in range(10)
        ]
        result = greedy_assignment(scores)
        assert len(set(result.pairs.keys())) == len(result.pairs)
        assert len(set(result.pairs.values())) == len(result.pairs)


class TestOptimal:
    def test_beats_greedy_on_conflict(self):
        # Optimal: p1->c2 (0.8) + p2->c1 (0.85) = 1.65 > greedy 1.0.
        result = optimal_assignment(TOY_SCORES)
        assert result.pairs == {"p1": "c2", "p2": "c1"}
        assert result.total_score == pytest.approx(1.65)

    def test_never_worse_than_greedy(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            scores = [
                (f"p{i}", f"c{j}", float(rng.random()))
                for i in range(8)
                for j in range(8)
            ]
            greedy = greedy_assignment(scores)
            optimal = optimal_assignment(scores)
            assert optimal.total_score >= greedy.total_score - 1e-9

    def test_min_score_respected(self):
        result = optimal_assignment(TOY_SCORES, min_score=0.82)
        assert set(result.pairs.values()) <= {"c1"}

    def test_empty(self):
        assert len(optimal_assignment([])) == 0


class TestAccuracy:
    def test_accuracy_metric(self):
        assignment = Assignment(pairs={"p1": "c1", "p2": "c9"}, total_score=1.0)
        truth = {"p1": "c1", "p2": "c2"}
        assert assignment.accuracy(truth) == 0.5

    def test_empty_assignment_zero(self):
        assert Assignment(pairs={}, total_score=0.0).accuracy({}) == 0.0


class TestEndToEnd:
    def test_score_all_pairs_shape(self, small_pair, fitted_models):
        mr, ma = fitted_models
        qids = list(small_pair.truth)[:5]
        triples = score_all_pairs(
            small_pair.p_db, small_pair.q_db, mr, ma, query_ids=qids
        )
        assert len(triples) == 5 * len(small_pair.q_db)

    @pytest.mark.parametrize("method", ["greedy", "optimal"])
    def test_assignment_accuracy_high(self, small_pair, fitted_models, method):
        mr, ma = fitted_models
        rng = np.random.default_rng(0)
        qids = small_pair.sample_queries(12, rng)
        assignment = assign_queries(
            small_pair.p_db, small_pair.q_db, mr, ma,
            query_ids=qids, method=method,
        )
        assert assignment.accuracy(small_pair.truth) >= 0.8

    def test_unknown_method_rejected(self, small_pair, fitted_models):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            assign_queries(
                small_pair.p_db, small_pair.q_db, mr, ma, method="magic"
            )

    def test_assignment_at_least_as_good_as_top1(
        self, small_pair, fitted_models
    ):
        """Global assignment should not be worse than independent top-1."""
        from repro.core.ranking import rank_candidates

        mr, ma = fitted_models
        rng = np.random.default_rng(1)
        qids = small_pair.sample_queries(15, rng)
        top1_hits = sum(
            1
            for qid in qids
            if rank_candidates(small_pair.p_db[qid], small_pair.q_db, mr, ma)[0]
            .candidate_id
            == small_pair.truth[qid]
        )
        assignment = assign_queries(
            small_pair.p_db, small_pair.q_db, mr, ma,
            query_ids=qids, method="optimal",
        )
        assigned_hits = sum(
            1 for qid in qids if assignment.pairs.get(qid) == small_pair.truth[qid]
        )
        assert assigned_hits >= top1_hits - 1
