"""The mmap-backed trajectory store: round trips, appends, crash safety.

Includes the acceptance-criteria tests: engine results over a
store-backed database are bit-identical to the CSV path, and a
CSV-round-tripped database survives the store unchanged at float64
precision.
"""

import json

import numpy as np
import pytest

from repro.core.database import TrajectoryDatabase
from repro.core.engine import LinkEngine, LinkOptions
from repro.core.trajectory import Trajectory
from repro.errors import (
    StaleIndexError,
    StoreFormatError,
    ValidationError,
)
from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.io.registry import detect_format, load_database, save_database
from repro.store import TrajectoryStore, build_store, open_store
from repro.store.format import MANIFEST_NAME, read_manifest


@pytest.fixture
def db() -> TrajectoryDatabase:
    rng = np.random.default_rng(42)
    trajs = []
    for i in range(6):
        n = 8 + i
        ts = np.sort(rng.uniform(0, 5e4, n))
        trajs.append(
            Trajectory(ts, rng.uniform(0, 2e4, n), rng.uniform(0, 2e4, n),
                       f"t{i}")
        )
    return TrajectoryDatabase(trajs, name="demo")


def _memmap_backed(arr: np.ndarray) -> bool:
    base = arr
    while base is not None and not isinstance(base, np.memmap):
        base = base.base
    return isinstance(base, np.memmap)


def assert_dbs_identical(a: TrajectoryDatabase, b: TrajectoryDatabase) -> None:
    assert sorted(map(str, a.ids())) == sorted(map(str, b.ids()))
    for traj in a:
        other = b[str(traj.traj_id)]
        assert np.array_equal(traj.ts, other.ts)
        assert np.array_equal(traj.xs, other.xs)
        assert np.array_equal(traj.ys, other.ys)


class TestRoundTrip:
    def test_create_load_identical(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        loaded = store.load()
        assert_dbs_identical(db, loaded)
        assert loaded.name == "demo"
        assert store.generation == 1

    def test_load_is_zero_copy(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        loaded = open_store(tmp_path / "s").load()
        for traj in loaded:
            assert _memmap_backed(traj.ts)
            assert _memmap_backed(traj.xs)
            assert _memmap_backed(traj.ys)
        assert store.stats().n_records == db.total_records()

    def test_csv_round_trip_through_store(self, db, tmp_path):
        """CSV -> store -> load is bit-identical to CSV -> memory."""
        csv_path = tmp_path / "db.csv"
        write_trajectories_csv(db, csv_path)
        parsed = read_trajectories_csv(csv_path, name="demo")
        store = build_store(tmp_path / "s", parsed)
        assert_dbs_identical(parsed, store.load())

    def test_create_refuses_existing_store(self, db, tmp_path):
        build_store(tmp_path / "s", db)
        with pytest.raises(ValidationError, match="already exists"):
            TrajectoryStore.create(tmp_path / "s", db)

    def test_create_refuses_nonempty_dir(self, db, tmp_path):
        target = tmp_path / "junk"
        target.mkdir()
        (target / "unrelated.txt").write_text("x")
        with pytest.raises(ValidationError, match="not empty"):
            TrajectoryStore.create(target, db)

    def test_empty_store(self, tmp_path):
        store = TrajectoryStore.create(tmp_path / "s")
        assert len(store.load()) == 0
        assert store.stats().n_records == 0

    def test_future_format_version_rejected(self, db, tmp_path):
        build_store(tmp_path / "s", db)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        doc = json.loads(manifest_path.read_text())
        doc["format_version"] = 99
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(StoreFormatError, match="version"):
            open_store(tmp_path / "s")


class TestAppendCompact:
    def test_append_new_ids(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        extra = Trajectory([1.0, 2.0], [3.0, 4.0], [5.0, 6.0], "new")
        assert store.append([extra]) == 2
        assert store.generation == 2
        loaded = store.load()
        assert len(loaded) == len(db) + 1
        assert np.array_equal(loaded["new"].ts, [1.0, 2.0])

    def test_append_delta_merges_on_read(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        base = db["t0"]
        delta = Trajectory([base.ts[0] - 10.0], [7.0], [8.0], "t0")
        store.append([delta])
        merged = store.load()["t0"]
        assert len(merged) == len(base) + 1
        assert merged.ts[0] == base.ts[0] - 10.0
        assert np.all(np.diff(merged.ts) >= 0)

    def test_append_rejects_duplicate_ids_in_batch(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        t = Trajectory([1.0], [2.0], [3.0], "dup")
        with pytest.raises(ValidationError, match="duplicate"):
            store.append([t, t])

    def test_append_rejects_anonymous_trajectories(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        with pytest.raises(ValidationError, match="non-None id"):
            store.append([Trajectory([1.0], [2.0], [3.0])])

    def test_compact_restores_single_segment_zero_copy(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        store.append([Trajectory([1.0], [2.0], [3.0], "t0")])
        before = store.load()
        stats = store.compact()
        assert stats.n_segments == 1
        after = store.load()
        assert_dbs_identical(before, after)
        assert _memmap_backed(after["t0"].ts)

    def test_compact_preserves_and_refreshes_index(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        store.build_index(reach_gap_s=600.0, vmax_kph=80.0)
        store.append([Trajectory([1.0], [2.0], [3.0], "t0")])
        with pytest.raises(StaleIndexError):
            store.open_index()
        store.compact()
        index = store.open_index()
        assert index.reach_gap_s == 600.0
        assert index.vmax_kph == 80.0
        assert len(index) == len(db)


class TestCrashSafety:
    def test_interrupted_append_keeps_last_snapshot(self, db, tmp_path,
                                                    monkeypatch):
        store = build_store(tmp_path / "s", db)
        generation = store.generation

        def crash(manifest):
            raise OSError("simulated crash before manifest swap")

        monkeypatch.setattr(store, "_commit", crash)
        with pytest.raises(OSError, match="simulated crash"):
            store.append([Trajectory([1.0], [2.0], [3.0], "late")])
        # The segment hit disk, but the manifest never referenced it:
        # a fresh open serves the old snapshot.
        reopened = open_store(tmp_path / "s")
        assert reopened.generation == generation
        assert_dbs_identical(db, reopened.load())
        assert "late" not in reopened.load()

    def test_orphan_segments_are_garbage_collected(self, db, tmp_path,
                                                   monkeypatch):
        store = build_store(tmp_path / "s", db)
        monkeypatch.setattr(store, "_commit", lambda m: (_ for _ in ()).throw(
            OSError("crash")))
        with pytest.raises(OSError):
            store.append([Trajectory([1.0], [2.0], [3.0], "late")])
        monkeypatch.undo()
        orphans = [
            child.name
            for child in (tmp_path / "s").iterdir()
            if child.is_dir() and child.name.startswith("seg-")
        ]
        assert len(orphans) == 2  # live + orphan
        reopened = open_store(tmp_path / "s")
        reopened.append([Trajectory([9.0], [9.0], [9.0], "ok")])
        remaining = {
            child.name
            for child in (tmp_path / "s").iterdir()
            if child.is_dir() and child.name.startswith("seg-")
        }
        live = {info.dirname for info in reopened.manifest.segments}
        assert remaining == live

    def test_torn_segment_file_detected(self, db, tmp_path):
        build_store(tmp_path / "s", db)
        manifest = read_manifest(tmp_path / "s")
        seg = tmp_path / "s" / manifest.segments[0].dirname
        ts_path = seg / "ts.f64"
        ts_path.write_bytes(ts_path.read_bytes()[:-8])
        with pytest.raises(StoreFormatError, match="bytes"):
            open_store(tmp_path / "s").load()


class TestEngineBitIdentity:
    def test_link_results_identical_csv_vs_store(
        self, small_pair, fitted_models, tmp_path
    ):
        """The acceptance criterion: same bits either way into the engine."""
        mr, ma = fitted_models
        csv_path = tmp_path / "q.csv"
        write_trajectories_csv(small_pair.q_db, csv_path)
        csv_db = read_trajectories_csv(csv_path, name="Q")
        store_db = build_store(tmp_path / "q-store", csv_db).load()

        options = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)
        queries = [
            small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:3]
        ]
        via_csv = LinkEngine(mr, ma, options=options).link_batch(
            queries, list(csv_db)
        )
        via_store = LinkEngine(mr, ma, options=options).link_batch(
            queries, list(store_db)
        )
        assert via_csv == via_store


class TestRegistryIntegration:
    def test_store_detected_and_round_tripped(self, db, tmp_path):
        target = tmp_path / "reg-store"
        written = save_database(db, target, fmt="store")
        assert written == db.total_records()
        assert detect_format(target) == "store"
        assert_dbs_identical(db, load_database(target))

    def test_save_to_existing_store_appends(self, db, tmp_path):
        target = tmp_path / "reg-store"
        save_database(db, target, fmt="store")
        extra = TrajectoryDatabase(
            [Trajectory([1.0], [2.0], [3.0], "extra")], name="demo"
        )
        save_database(extra, target)
        assert "extra" in load_database(target)


class TestDatabaseFromStore:
    def test_from_store_accepts_handle_and_path(self, db, tmp_path):
        store = build_store(tmp_path / "s", db)
        via_handle = TrajectoryDatabase.from_store(store)
        via_path = TrajectoryDatabase.from_store(tmp_path / "s")
        assert_dbs_identical(via_handle, via_path)
        assert TrajectoryDatabase.from_store(store, name="other").name == "other"


class TestBenchSmoke:
    def test_store_bench_smoke(self, tmp_path):
        """Tiny-size run of the store benchmark, emitting BENCH_store.json."""
        from benchmarks.bench_store_scale import run_store_scale_benchmark

        out = tmp_path / "BENCH_store.json"
        report = run_store_scale_benchmark(
            sizes=(64,), n_queries=5, repeats=1, seed=3,
            work_dir=tmp_path, out_path=out,
        )
        written = json.loads(out.read_text())
        row = written["sizes"]["64"]
        assert row["n_trajectories"] == 64
        assert report["sizes"]["64"]["recall_spatiotemporal"] == 1.0
        assert row["mean_kept_spatiotemporal"] <= row["mean_kept_temporal"]
        assert row["store_open_s"] > 0.0


class TestModelArtifacts:
    """Versioned Mr/Ma artifacts: persistence, identity, compatibility."""

    @pytest.fixture
    def config(self):
        from repro.config import FTLConfig

        return FTLConfig()

    def _fit(self, db, config, seed=0):
        from repro.store import fit_model_artifact

        return fit_model_artifact(
            [db], config, np.random.default_rng(seed), fitted_at=123.0
        )

    def test_fit_persist_reopen_bit_identical_ranking(
        self, db, tmp_path, config
    ):
        """The acceptance-criteria core: a persisted artifact serves the
        exact ranking of the in-memory fit it came from."""
        store = build_store(tmp_path / "s", db)
        artifact = self._fit(db, config)
        store.save_model(artifact, created_at=1.0, activate=True)

        reopened = open_store(tmp_path / "s")
        assert reopened.active_model_id == artifact.artifact_id
        loaded = reopened.load_model()
        assert loaded.artifact_id == artifact.artifact_id
        assert loaded.config == config

        pool = [t for t in db if str(t.traj_id) != "t0"]
        query = db["t0"]
        fresh = LinkEngine(artifact.rejection, artifact.acceptance)
        persisted = LinkEngine(loaded.rejection, loaded.acceptance)
        a = fresh.link(query, pool)
        b = persisted.link(query, pool)
        assert [c.candidate_id for c in a.candidates] == [
            c.candidate_id for c in b.candidates
        ]
        assert [c.score for c in a.candidates] == [
            c.score for c in b.candidates
        ]

    def test_save_is_idempotent_and_generation_stable(
        self, db, tmp_path, config
    ):
        store = build_store(tmp_path / "s", db)
        generation = store.generation
        artifact = self._fit(db, config)
        first = store.save_model(artifact, created_at=1.0)
        again = store.save_model(artifact, created_at=2.0)
        assert first.artifact_id == again.artifact_id
        assert len(store.list_models()) == 1
        # Registering a model must not invalidate the data snapshot:
        # the generation (which the blocking index and shard-plan
        # drift detection pin) stays put.
        store.activate_model(artifact.artifact_id)
        assert store.generation == generation

    def test_previous_format_manifest_loads_cleanly(self, db, tmp_path):
        """A v1 manifest (no model keys at all) opens with an empty
        model registry, and saving upgrades the format version."""
        store = build_store(tmp_path / "s", db)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        obj = json.loads(manifest_path.read_text())
        obj["format_version"] = 1
        obj.pop("models", None)
        obj.pop("active_model", None)
        manifest_path.write_text(json.dumps(obj))

        reopened = open_store(tmp_path / "s")
        assert reopened.manifest.format_version == 1
        assert reopened.list_models() == ()
        assert reopened.active_model_id is None
        assert_dbs_identical(
            TrajectoryDatabase(reopened.load()), db
        )
        with pytest.raises(ValidationError):
            reopened.load_model()

        from repro.config import FTLConfig
        from repro.store.format import FORMAT_VERSION

        artifact = self._fit(db, FTLConfig())
        reopened.save_model(artifact, created_at=1.0, activate=True)
        assert (
            json.loads(manifest_path.read_text())["format_version"]
            == FORMAT_VERSION
        )
        assert open_store(tmp_path / "s").load_model().artifact_id \
            == artifact.artifact_id

    def test_tampered_payload_is_detected(self, db, tmp_path, config):
        from repro.store.format import MODELS_DIR

        store = build_store(tmp_path / "s", db)
        artifact = self._fit(db, config)
        info = store.save_model(artifact, created_at=1.0, activate=True)
        path = tmp_path / "s" / MODELS_DIR / info.filename
        payload = json.loads(path.read_text())
        payload["rejection"]["total"][0] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises((ValidationError, StoreFormatError)) as err:
            open_store(tmp_path / "s").load_model()
        assert "hash" in str(err.value)

    def test_unknown_artifact_ids_rejected(self, db, tmp_path, config):
        store = build_store(tmp_path / "s", db)
        with pytest.raises(ValidationError):
            store.activate_model("m-deadbeef00000000")
        with pytest.raises(ValidationError):
            store.load_model("m-deadbeef00000000")

    def test_refit_gets_new_identity(self, db, tmp_path, config):
        from repro.store import diff_artifacts, fit_model_artifact

        store = build_store(tmp_path / "s", db)
        a = self._fit(db, config)
        # With 6 trajectories the pair universe is fully enumerated, so
        # a different seed alone would refit identically; cap the pair
        # budget to actually change the acceptance counts.
        b = fit_model_artifact(
            [db], config, np.random.default_rng(99),
            max_pairs=3, fitted_at=456.0,
        )
        store.save_model(a, created_at=1.0, activate=True)
        store.save_model(b, created_at=2.0)
        assert a.artifact_id != b.artifact_id
        assert store.active_model_id == a.artifact_id
        assert len(store.list_models()) == 2
        diff = diff_artifacts(a, b)
        assert not diff["identical"]
        assert diff["config_diff"] == {}
        assert diff["max_abs_prob_delta"]["rejection"] >= 0.0

    def test_provenance_pins_dataset_and_config(self, db, tmp_path, config):
        store = build_store(tmp_path / "s", db)
        artifact = self._fit(db, config)
        store.save_model(artifact, created_at=1.0, activate=True)
        loaded = open_store(tmp_path / "s").load_model()
        from repro.store import dataset_content_hash

        assert loaded.provenance.dataset_hash == dataset_content_hash([db])
        assert loaded.provenance.n_trajectories == len(db)
        assert loaded.provenance.fitted_at == 123.0
        assert loaded.summary()["config"] == config.to_dict()
