"""Scenario builders and sparsity transforms."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.units import days_to_seconds
from repro.synth.city import CityModel
from repro.synth.downsample import downsample_pair, trim_pair
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import make_paired_databases, make_split_databases


@pytest.fixture(scope="module")
def module_city():
    return CityModel.generate(np.random.default_rng(3))


@pytest.fixture(scope="module")
def agents(module_city):
    return generate_population(
        module_city, 12, days_to_seconds(3), np.random.default_rng(4)
    )


class TestPopulation:
    def test_agent_ids_sequential(self, agents):
        assert [a.agent_id for a in agents] == list(range(12))

    def test_paths_cover_duration(self, agents):
        assert all(a.path.end_time >= days_to_seconds(3) for a in agents)

    def test_commuter_style(self, module_city, rng):
        pop = generate_population(
            module_city, 3, days_to_seconds(1), rng, mobility="commuter"
        )
        assert len(pop) == 3

    def test_unknown_style_rejected(self, module_city, rng):
        with pytest.raises(ValidationError):
            generate_population(module_city, 3, 100.0, rng, mobility="teleport")

    def test_zero_agents_rejected(self, module_city, rng):
        with pytest.raises(ValidationError):
            generate_population(module_city, 0, 100.0, rng)


class TestPairedDatabases:
    def test_structure(self, agents, rng):
        pair = make_paired_databases(
            agents,
            ObservationService("P", 2.0, GaussianNoise(50.0)),
            ObservationService("Q", 1.0, GaussianNoise(50.0)),
            rng,
        )
        assert pair.p_db.name == "P"
        assert pair.q_db.name == "Q"
        assert set(pair.truth) <= {f"P{a.agent_id}" for a in agents}
        for pid, qid in pair.truth.items():
            assert pid in pair.p_db and qid in pair.q_db

    def test_ids_prefixed(self, agents, rng):
        pair = make_paired_databases(
            agents,
            ObservationService("P", 2.0),
            ObservationService("Q", 2.0),
            rng,
        )
        assert all(str(t.traj_id).startswith("P") for t in pair.p_db)
        assert all(str(t.traj_id).startswith("Q") for t in pair.q_db)

    def test_truth_requires_min_records(self, agents, rng):
        pair = make_paired_databases(
            agents,
            ObservationService("P", 2.0),
            ObservationService("Q", 2.0),
            rng,
            min_records=10_000,
        )
        assert len(pair.truth) == 0

    def test_empty_agents_rejected(self, rng):
        with pytest.raises(ValidationError):
            make_paired_databases(
                [], ObservationService("P", 1.0), ObservationService("Q", 1.0), rng
            )

    def test_matched_query_ids(self, agents, rng):
        pair = make_paired_databases(
            agents,
            ObservationService("P", 2.0),
            ObservationService("Q", 2.0),
            rng,
        )
        assert set(pair.matched_query_ids()) == set(pair.truth)

    def test_sample_queries(self, agents, rng):
        pair = make_paired_databases(
            agents,
            ObservationService("P", 2.0),
            ObservationService("Q", 2.0),
            rng,
        )
        sampled = pair.sample_queries(5, rng)
        assert len(set(sampled)) == 5
        with pytest.raises(ValidationError):
            pair.sample_queries(10_000, rng)


class TestSplitDatabases:
    @pytest.fixture
    def dense_trajs(self):
        rng = np.random.default_rng(9)
        trajs = []
        for i in range(8):
            n = 200
            ts = np.sort(rng.uniform(0, 1e5, n))
            trajs.append(Trajectory(ts, rng.uniform(0, 1e4, n),
                                    rng.uniform(0, 1e4, n), i))
        return trajs

    def test_records_partitioned(self, dense_trajs, rng):
        pair = make_split_databases(dense_trajs, rng)
        for traj in dense_trajs:
            p = pair.p_db.get(f"P{traj.traj_id}")
            q = pair.q_db.get(f"Q{traj.traj_id}")
            total = (0 if p is None else len(p)) + (0 if q is None else len(q))
            assert total == len(traj)

    def test_split_probability_biases(self, dense_trajs, rng):
        pair = make_split_databases(dense_trajs, rng, split_probability=0.9)
        p_total = pair.p_db.total_records()
        q_total = pair.q_db.total_records()
        assert p_total > 4 * q_total

    def test_truth_mapping(self, dense_trajs, rng):
        pair = make_split_databases(dense_trajs, rng)
        assert pair.truth["P3"] == "Q3"

    def test_invalid_probability(self, dense_trajs, rng):
        with pytest.raises(ValidationError):
            make_split_databases(dense_trajs, rng, split_probability=0.0)
        with pytest.raises(ValidationError):
            make_split_databases(dense_trajs, rng, split_probability=1.0)

    def test_empty_input_rejected(self, rng):
        with pytest.raises(ValidationError):
            make_split_databases([], rng)


class TestDownsamplePair:
    @pytest.fixture
    def pair(self, agents, rng):
        return make_paired_databases(
            agents,
            ObservationService("P", 4.0),
            ObservationService("Q", 4.0),
            rng,
        )

    def test_shrinks_databases(self, pair, rng):
        thinned = downsample_pair(pair, 0.3, 0.3, rng)
        assert thinned.p_db.total_records() < pair.p_db.total_records()
        assert thinned.q_db.total_records() < pair.q_db.total_records()

    def test_truth_filtered(self, pair, rng):
        thinned = downsample_pair(pair, 0.05, 0.05, rng, min_records=3)
        for pid, qid in thinned.truth.items():
            assert len(thinned.p_db[pid]) >= 3
            assert len(thinned.q_db[qid]) >= 3

    def test_rate_validation(self, pair, rng):
        with pytest.raises(ValidationError):
            downsample_pair(pair, 0.0, 0.5, rng)
        with pytest.raises(ValidationError):
            downsample_pair(pair, 0.5, 1.2, rng)

    def test_trim_pair_bounds_duration(self, pair):
        trimmed = trim_pair(pair, days_to_seconds(1))
        for traj in trimmed.p_db:
            assert traj.duration <= days_to_seconds(1)

    def test_trim_validation(self, pair):
        with pytest.raises(ValidationError):
            trim_pair(pair, 0.0)
