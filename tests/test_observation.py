"""Observation services and noise models."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.units import SECONDS_PER_DAY, days_to_seconds
from repro.synth.city import CityModel
from repro.synth.mobility import build_taxi_path
from repro.synth.noise import GaussianNoise, NoNoise, TowerSnapNoise
from repro.synth.observation import ObservationService


@pytest.fixture(scope="module")
def module_city():
    return CityModel.generate(np.random.default_rng(5))


@pytest.fixture(scope="module")
def path(module_city):
    return build_taxi_path(module_city, days_to_seconds(3),
                           np.random.default_rng(6))


class TestNoiseModels:
    def test_no_noise_identity(self, rng):
        xs = np.array([1.0, 2.0])
        ys = np.array([3.0, 4.0])
        out_x, out_y = NoNoise().apply(xs, ys, rng)
        assert np.array_equal(out_x, xs)
        assert np.array_equal(out_y, ys)

    def test_gaussian_statistics(self, rng):
        noise = GaussianNoise(100.0)
        xs = np.zeros(20_000)
        out_x, out_y = noise.apply(xs, xs, rng)
        assert out_x.std() == pytest.approx(100.0, rel=0.05)
        assert out_x.mean() == pytest.approx(0.0, abs=3.0)

    def test_gaussian_zero_sigma_identity(self, rng):
        noise = GaussianNoise(0.0)
        xs = np.array([5.0])
        out_x, _ = noise.apply(xs, xs, rng)
        assert out_x[0] == 5.0

    def test_gaussian_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            GaussianNoise(-1.0)

    def test_tower_snap_returns_towers(self, module_city, rng):
        noise = TowerSnapNoise(module_city)
        xs = np.array([10_000.0, 20_000.0])
        ys = np.array([5_000.0, 12_000.0])
        out_x, out_y = noise.apply(xs, ys, rng)
        towers = module_city.towers
        for x, y in zip(out_x, out_y):
            assert (np.isclose(towers[:, 0], x) & np.isclose(towers[:, 1], y)).any()

    def test_tower_snap_empty(self, module_city, rng):
        noise = TowerSnapNoise(module_city)
        out_x, out_y = noise.apply(np.array([]), np.array([]), rng)
        assert out_x.size == 0

    def test_reprs(self, module_city):
        assert "NoNoise" in repr(NoNoise())
        assert "80" in repr(GaussianNoise(80.0))
        assert "Tower" in repr(TowerSnapNoise(module_city))


class TestObservationService:
    def test_observe_produces_sorted_trajectory(self, path, rng):
        service = ObservationService("svc", rate_per_hour=2.0)
        traj = service.observe(path, rng, traj_id="t")
        assert traj.traj_id == "t"
        assert np.all(np.diff(traj.ts) >= 0)

    def test_record_count_matches_rate(self, path, rng):
        service = ObservationService("svc", rate_per_hour=1.0)
        counts = [len(service.observe(path, rng)) for _ in range(60)]
        assert np.mean(counts) == pytest.approx(72.0, rel=0.15)  # 3 days * 24

    def test_noiseless_points_on_path(self, path, rng):
        service = ObservationService("svc", rate_per_hour=2.0, noise=NoNoise())
        traj = service.observe(path, rng)
        xs, ys = path.position_at(traj.ts)
        assert np.allclose(traj.xs, xs)
        assert np.allclose(traj.ys, ys)

    def test_gaussian_noise_applied(self, path, rng):
        service = ObservationService(
            "svc", rate_per_hour=10.0, noise=GaussianNoise(200.0)
        )
        traj = service.observe(path, rng)
        xs, _ys = path.position_at(traj.ts)
        deviation = np.abs(traj.xs - xs)
        assert deviation.mean() > 50.0

    def test_day_fraction_concentrates_daytime(self, path):
        rng = np.random.default_rng(0)
        service = ObservationService(
            "svc", rate_per_hour=4.0, day_fraction=0.95
        )
        traj = service.observe(path, rng)
        hours = (traj.ts % SECONDS_PER_DAY) / 3600.0
        day_share = ((hours >= 7) & (hours < 23)).mean()
        assert day_share > 0.85

    def test_day_fraction_preserves_mean_rate(self, path):
        rng = np.random.default_rng(0)
        flat = ObservationService("a", rate_per_hour=2.0)
        diurnal = ObservationService("b", rate_per_hour=2.0, day_fraction=0.9)
        n_flat = np.mean([len(flat.observe(path, rng)) for _ in range(40)])
        n_diurnal = np.mean([len(diurnal.observe(path, rng)) for _ in range(40)])
        assert n_diurnal == pytest.approx(n_flat, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ObservationService("svc", rate_per_hour=0.0)
        with pytest.raises(ValidationError):
            ObservationService("svc", rate_per_hour=1.0, day_fraction=0.0)
        with pytest.raises(ValidationError):
            ObservationService("svc", rate_per_hour=1.0, day_fraction=1.5)
        with pytest.raises(ValidationError):
            ObservationService("svc", rate_per_hour=1.0, burst_mean=0.5)
        with pytest.raises(ValidationError):
            ObservationService("svc", rate_per_hour=1.0, burst_span_s=0.0)
        with pytest.raises(ValidationError):
            ObservationService("svc", rate_per_hour=1.0, rate_dispersion=-1.0)


class TestBurstyAccess:
    def test_mean_rate_preserved(self, path):
        rng = np.random.default_rng(0)
        bursty = ObservationService("b", rate_per_hour=2.0, burst_mean=4.0)
        counts = [len(bursty.observe(path, rng)) for _ in range(120)]
        assert np.mean(counts) == pytest.approx(144.0, rel=0.15)  # 3d * 48

    def test_events_are_clustered(self, path):
        rng = np.random.default_rng(1)
        bursty = ObservationService(
            "b", rate_per_hour=2.0, burst_mean=5.0, burst_span_s=60.0
        )
        plain = ObservationService("p", rate_per_hour=2.0)
        gaps_b = np.concatenate(
            [bursty.observe(path, rng).gaps() for _ in range(20)]
        )
        gaps_p = np.concatenate(
            [plain.observe(path, rng).gaps() for _ in range(20)]
        )
        # Burstiness: many more tiny gaps than a Poisson stream has.
        assert (gaps_b < 120.0).mean() > 2 * (gaps_p < 120.0).mean()

    def test_times_sorted_and_in_window(self, path):
        rng = np.random.default_rng(2)
        bursty = ObservationService("b", rate_per_hour=3.0, burst_mean=3.0)
        traj = bursty.observe(path, rng)
        assert np.all(np.diff(traj.ts) >= 0)
        assert traj.ts.min() >= path.start_time
        assert traj.ts.max() < path.end_time


class TestHeterogeneousRates:
    def test_dispersion_widens_count_distribution(self, path):
        rng = np.random.default_rng(3)
        uniform = ObservationService("u", rate_per_hour=2.0)
        dispersed = ObservationService(
            "d", rate_per_hour=2.0, rate_dispersion=1.0
        )
        n_uniform = np.array(
            [len(uniform.observe(path, rng)) for _ in range(150)]
        )
        n_dispersed = np.array(
            [len(dispersed.observe(path, rng)) for _ in range(150)]
        )
        assert n_dispersed.std() > 1.5 * n_uniform.std()
        assert n_dispersed.mean() == pytest.approx(n_uniform.mean(), rel=0.25)

    def test_properties_and_repr(self):
        service = ObservationService("svc", rate_per_hour=2.5)
        assert service.name == "svc"
        assert service.rate_per_hour == pytest.approx(2.5)
        assert "svc" in repr(service)
