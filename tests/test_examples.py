"""Smoke tests: the example scripts are runnable deliverables.

Each example's ``main()`` is executed in-process (stdout captured by
pytest).  Only the fast examples run here; all of them are exercised by
the repository's final verification run.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))


def run_example(module_name: str) -> None:
    module = importlib.import_module(module_name)
    try:
        module.main()
    finally:
        sys.modules.pop(module_name, None)


class TestFastExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "perceptiveness" in out

    def test_theory_validation(self, capsys):
        run_example("theory_validation")
        out = capsys.readouterr().out
        assert "confirmed by simulation" in out

    def test_privacy_defense_study(self, capsys):
        run_example("privacy_defense_study")
        out = capsys.readouterr().out
        assert "linkability" in out

    def test_crime_investigation(self, capsys):
        run_example("crime_investigation")
        out = capsys.readouterr().out
        assert "median rank" in out

    def test_checkin_linkage(self, capsys):
        run_example("checkin_linkage")
        out = capsys.readouterr().out
        assert "linked" in out

    def test_disease_contact_tracing(self, capsys):
        run_example("disease_contact_tracing")
        out = capsys.readouterr().out
        assert "resolved to the right" in out

    def test_serve_and_query(self, capsys):
        run_example("serve_and_query")
        out = capsys.readouterr().out
        assert "daemon listening on http://" in out
        assert "scatter across 2 shards" in out
        assert "/v1/link requests" in out
        assert "daemon drained; bye" in out
