"""Spatio-temporal blocking: the superset contract, property-tested.

The contract (module docstring of :mod:`repro.store.stindex`): the
index keeps every candidate that (a) passes
:class:`~repro.core.prefilter.TimeOverlapPrefilter` at the same
``min_overlap_s`` and (b) has a record within ``vmax * dt`` of some
query record for a gap ``dt <= reach_gap_s``.  Brute force here
evaluates exactly that definition over all record pairs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import TrajectoryDatabase
from repro.core.prefilter import TimeOverlapPrefilter
from repro.core.trajectory import Trajectory
from repro.errors import StaleIndexError, StoreFormatError, ValidationError
from repro.geo.units import kph_to_mps
from repro.store import TrajectoryStore
from repro.store.stindex import SpatioTemporalIndex


def _reachable(query: Trajectory, candidate: Trajectory, vmax_kph: float,
               reach_gap_s: float) -> bool:
    """Brute force: any record pair with dt <= gap and dist <= vmax*dt."""
    vmax = kph_to_mps(vmax_kph)
    for tq, xq, yq in zip(query.ts, query.xs, query.ys):
        dt = np.abs(candidate.ts - tq)
        dist = np.hypot(candidate.xs - xq, candidate.ys - yq)
        if np.any((dt <= reach_gap_s) & (dist <= vmax * dt)):
            return True
    return False


def _random_db(rng: np.random.Generator, n_traj: int) -> TrajectoryDatabase:
    db = TrajectoryDatabase(name="prop")
    for i in range(n_traj):
        n = int(rng.integers(1, 7))
        ts = np.sort(rng.uniform(0.0, 2000.0, n))
        xs = rng.uniform(-30_000.0, 30_000.0, n)
        ys = rng.uniform(-30_000.0, 30_000.0, n)
        db.add(Trajectory(ts, xs, ys, f"c{i}"))
    return db


class TestSupersetContract:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_traj=st.integers(1, 8),
        vmax_kph=st.sampled_from([30.0, 80.0, 150.0]),
        reach_gap_s=st.sampled_from([60.0, 300.0, 900.0]),
        min_overlap_s=st.sampled_from([0.0, 50.0, 400.0]),
        cell_size_m=st.sampled_from([None, 250.0, 5_000.0]),
    )
    def test_never_drops_a_reachable_overlapping_candidate(
        self, seed, n_traj, vmax_kph, reach_gap_s, min_overlap_s, cell_size_m
    ):
        rng = np.random.default_rng(seed)
        db = _random_db(rng, n_traj)
        index = SpatioTemporalIndex.build(
            db, cell_size_m=cell_size_m, vmax_kph=vmax_kph,
            reach_gap_s=reach_gap_s,
        )
        nq = int(rng.integers(1, 6))
        query = Trajectory(
            np.sort(rng.uniform(0.0, 2000.0, nq)),
            rng.uniform(-30_000.0, 30_000.0, nq),
            rng.uniform(-30_000.0, 30_000.0, nq),
            "q",
        )
        kept = set(index.ids_for(query, min_overlap_s=min_overlap_s))
        temporal = set(index.temporal_ids_for(query, min_overlap_s=min_overlap_s))
        prefilter = TimeOverlapPrefilter(min_overlap_s)
        for candidate in db:
            cid = str(candidate.traj_id)
            required = prefilter.keep(query, candidate) and _reachable(
                query, candidate, vmax_kph, reach_gap_s
            )
            if required:
                assert cid in kept, (
                    f"superset contract violated for {cid} "
                    f"(vmax={vmax_kph}, gap={reach_gap_s}, "
                    f"cell={cell_size_m}, overlap={min_overlap_s})"
                )
        # and it must always be a refinement of temporal blocking
        assert kept <= temporal

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), min_overlap_s=st.sampled_from(
        [0.0, 100.0, 600.0]))
    def test_temporal_ids_match_prefilter_exactly(self, seed, min_overlap_s):
        rng = np.random.default_rng(seed)
        db = _random_db(rng, 6)
        index = SpatioTemporalIndex.build(db, reach_gap_s=300.0)
        nq = int(rng.integers(1, 5))
        query = Trajectory(
            np.sort(rng.uniform(0.0, 2000.0, nq)),
            rng.uniform(-30_000.0, 30_000.0, nq),
            rng.uniform(-30_000.0, 30_000.0, nq),
            "q",
        )
        prefilter = TimeOverlapPrefilter(min_overlap_s)
        expected = {
            str(c.traj_id) for c in db if prefilter.keep(query, c)
        }
        assert set(index.temporal_ids_for(query, min_overlap_s)) == expected


class TestQuerySemantics:
    def test_empty_query_returns_nothing(self, rng):
        db = _random_db(rng, 4)
        index = SpatioTemporalIndex.build(db)
        assert index.candidates_for(Trajectory.empty("q")) == []

    def test_out_of_range_query_falls_back_to_temporal(self, rng):
        db = _random_db(rng, 5)
        index = SpatioTemporalIndex.build(db, cell_size_m=100.0)
        far = Trajectory([0.0, 2000.0], [1e13, 1e13], [1e13, 1e13], "far")
        assert set(index.ids_for(far)) == set(index.temporal_ids_for(far))

    def test_out_of_range_build_rejected(self):
        db = TrajectoryDatabase(
            [Trajectory([0.0], [1e15], [0.0], "huge")], name="d"
        )
        with pytest.raises(ValidationError, match="indexable range"):
            SpatioTemporalIndex.build(db, cell_size_m=1.0)

    def test_negative_overlap_rejected(self, rng):
        db = _random_db(rng, 2)
        index = SpatioTemporalIndex.build(db)
        with pytest.raises(ValidationError, match="min_overlap_s"):
            index.candidates_for(db[db.ids()[0]], min_overlap_s=-1.0)

    def test_prune_counts_are_consistent(self, rng):
        db = _random_db(rng, 8)
        index = SpatioTemporalIndex.build(db, reach_gap_s=120.0)
        query = db[db.ids()[0]]
        counts = index.prune_counts(query)
        assert counts["n_indexed"] == len(db)
        assert counts["n_temporal"] == len(index.temporal_ids_for(query))
        assert counts["n_spatiotemporal"] == len(index.ids_for(query))
        assert counts["n_spatiotemporal"] <= counts["n_temporal"]


class TestPersistence:
    def test_save_open_round_trip(self, rng, tmp_path):
        db = _random_db(rng, 6)
        built = SpatioTemporalIndex.build(db, reach_gap_s=300.0)
        built.save(tmp_path / "index", generation=7)
        opened = SpatioTemporalIndex.open(
            tmp_path / "index", db, expected_generation=7
        )
        assert opened.params() == built.params()
        for candidate in db:
            assert set(opened.ids_for(candidate)) == set(
                built.ids_for(candidate)
            )

    def test_generation_mismatch_raises_stale(self, rng, tmp_path):
        db = _random_db(rng, 3)
        SpatioTemporalIndex.build(db).save(tmp_path / "index", generation=1)
        with pytest.raises(StaleIndexError, match="generation"):
            SpatioTemporalIndex.open(
                tmp_path / "index", db, expected_generation=2
            )

    def test_store_open_index_requires_build(self, rng, tmp_path):
        db = _random_db(rng, 3)
        store = TrajectoryStore.create(tmp_path / "s", db)
        with pytest.raises(StoreFormatError, match="no blocking index"):
            store.open_index()
        store.build_index(reach_gap_s=60.0)
        index = store.open_index()
        assert index.reach_gap_s == 60.0
        assert len(index) == len(db)

    def test_missing_indexed_id_raises_stale(self, rng, tmp_path):
        db = _random_db(rng, 4)
        SpatioTemporalIndex.build(db).save(tmp_path / "index", generation=1)
        smaller = TrajectoryDatabase(
            [db[i] for i in db.ids()[:2]], name="partial"
        )
        with pytest.raises(StaleIndexError):
            SpatioTemporalIndex.open(
                tmp_path / "index", smaller, expected_generation=1
            )
