"""Ground-truth mobility paths."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.units import days_to_seconds, kph_to_mps
from repro.synth.city import CityModel
from repro.synth.mobility import (
    GroundTruthPath,
    build_commuter_path,
    build_taxi_path,
)


@pytest.fixture(scope="module")
def module_city():
    return CityModel.generate(np.random.default_rng(42))


class TestGroundTruthPath:
    def test_construction_validation(self):
        with pytest.raises(ValidationError):
            GroundTruthPath(np.array([0.0]), np.array([0.0]), np.array([0.0]))
        with pytest.raises(ValidationError):
            GroundTruthPath(
                np.array([1.0, 0.0]), np.zeros(2), np.zeros(2)
            )
        with pytest.raises(ValidationError):
            GroundTruthPath(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_interpolation_midpoint(self):
        path = GroundTruthPath(
            np.array([0.0, 100.0]), np.array([0.0, 50.0]), np.array([0.0, 100.0])
        )
        xs, ys = path.position_at(np.array([50.0]))
        assert xs[0] == 25.0 and ys[0] == 50.0

    def test_clamps_outside_window(self):
        path = GroundTruthPath(
            np.array([10.0, 20.0]), np.array([1.0, 2.0]), np.array([0.0, 0.0])
        )
        xs, _ = path.position_at(np.array([0.0, 100.0]))
        assert xs[0] == 1.0 and xs[1] == 2.0

    def test_max_speed(self):
        path = GroundTruthPath(
            np.array([0.0, 10.0, 20.0]),
            np.array([0.0, 100.0, 100.0]),
            np.array([0.0, 0.0, 0.0]),
        )
        assert path.max_speed_mps() == pytest.approx(10.0)

    def test_max_speed_all_dwell(self):
        path = GroundTruthPath(
            np.array([0.0, 10.0]), np.array([5.0, 5.0]), np.array([1.0, 1.0])
        )
        assert path.max_speed_mps() == 0.0

    def test_waypoints_copies(self):
        path = GroundTruthPath(
            np.array([0.0, 1.0]), np.array([0.0, 1.0]), np.array([0.0, 1.0])
        )
        ts, _xs, _ys = path.waypoints
        ts[0] = 99.0
        assert path.start_time == 0.0


class TestTaxiPath:
    def test_covers_duration(self, module_city, rng):
        duration = days_to_seconds(1)
        path = build_taxi_path(module_city, duration, rng)
        assert path.start_time == 0.0
        assert path.end_time >= duration

    def test_respects_speed_bound(self, module_city, rng):
        path = build_taxi_path(
            module_city, days_to_seconds(2), rng,
            speed_low_kph=25.0, speed_high_kph=70.0,
        )
        assert path.max_speed_mps() <= kph_to_mps(70.0) + 1e-9

    def test_stays_in_city(self, module_city, rng):
        path = build_taxi_path(module_city, days_to_seconds(1), rng)
        times = np.linspace(0, days_to_seconds(1), 500)
        xs, ys = path.position_at(times)
        assert module_city.bbox.contains_many(xs, ys).all()

    def test_start_time_offset(self, module_city, rng):
        path = build_taxi_path(module_city, 3600.0, rng, start_time=500.0)
        assert path.start_time == 500.0

    def test_validation(self, module_city, rng):
        with pytest.raises(ValidationError):
            build_taxi_path(module_city, 0.0, rng)
        with pytest.raises(ValidationError):
            build_taxi_path(module_city, 100.0, rng, speed_low_kph=80.0,
                            speed_high_kph=20.0)


class TestCommuterPath:
    def test_covers_duration(self, module_city, rng):
        duration = days_to_seconds(3)
        path = build_commuter_path(module_city, duration, rng)
        assert path.end_time >= duration

    def test_respects_speed_bound(self, module_city, rng):
        path = build_commuter_path(
            module_city, days_to_seconds(3), rng,
            speed_low_kph=20.0, speed_high_kph=60.0,
        )
        assert path.max_speed_mps() <= kph_to_mps(60.0) + 1e-9

    def test_overnight_at_home(self, module_city, rng):
        path = build_commuter_path(
            module_city, days_to_seconds(2), rng, errand_probability=0.0
        )
        # 3 AM positions on both nights should coincide (home).
        xs, ys = path.position_at(
            np.array([3 * 3600.0, 27 * 3600.0])
        )
        assert xs[0] == pytest.approx(xs[1], abs=1.0)
        assert ys[0] == pytest.approx(ys[1], abs=1.0)

    def test_midday_away_from_home(self, module_city, rng):
        # With home != work the 1 PM location differs from 3 AM (home).
        for seed in range(5):
            local = np.random.default_rng(seed)
            path = build_commuter_path(
                module_city, days_to_seconds(1), local, errand_probability=0.0
            )
            (x_night, x_noon), (y_night, y_noon) = path.position_at(
                np.array([3 * 3600.0, 13 * 3600.0])
            )
            if abs(x_night - x_noon) + abs(y_night - y_noon) > 100:
                return  # found an agent whose home and work differ
        pytest.fail("commuter never left home across 5 seeds")

    def test_validation(self, module_city, rng):
        with pytest.raises(ValidationError):
            build_commuter_path(module_city, -1.0, rng)
        with pytest.raises(ValidationError):
            build_commuter_path(module_city, 100.0, rng, errand_probability=1.5)
