"""TrajectoryDatabase container."""

import numpy as np
import pytest

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


def make_traj(traj_id, n=5, start=0.0, gap=3600.0):
    ts = start + gap * np.arange(n)
    return Trajectory(ts, np.zeros(n), np.zeros(n), traj_id)


@pytest.fixture
def db() -> TrajectoryDatabase:
    return TrajectoryDatabase([make_traj("a", 3), make_traj("b", 5)], name="test")


class TestMutation:
    def test_add_and_len(self, db):
        db.add(make_traj("c"))
        assert len(db) == 3

    def test_duplicate_id_rejected(self, db):
        with pytest.raises(ValidationError):
            db.add(make_traj("a"))

    def test_none_id_rejected(self, db):
        with pytest.raises(ValidationError):
            db.add(make_traj(None))

    def test_remove(self, db):
        removed = db.remove("a")
        assert removed.traj_id == "a"
        assert "a" not in db

    def test_remove_missing(self, db):
        with pytest.raises(ValidationError):
            db.remove("zzz")


class TestMappingProtocol:
    def test_getitem(self, db):
        assert db["b"].traj_id == "b"

    def test_getitem_missing(self, db):
        with pytest.raises(KeyError):
            db["zzz"]

    def test_get_default(self, db):
        assert db.get("zzz") is None

    def test_contains(self, db):
        assert "a" in db and "zzz" not in db

    def test_iteration_order(self, db):
        assert [t.traj_id for t in db] == ["a", "b"]

    def test_ids(self, db):
        assert db.ids() == ["a", "b"]

    def test_items(self, db):
        assert dict(db.items())["a"].traj_id == "a"

    def test_repr(self, db):
        assert "n=2" in repr(db)


class TestStatistics:
    def test_total_records(self, db):
        assert db.total_records() == 8

    def test_stats_lengths(self, db):
        stats = db.stats()
        assert stats.n_trajectories == 2
        assert stats.mean_length == 4.0
        assert stats.std_length == 1.0

    def test_stats_gaps_in_hours(self, db):
        stats = db.stats()
        assert stats.mean_gap_hours == pytest.approx(1.0)
        assert stats.std_gap_hours == pytest.approx(0.0)

    def test_stats_empty_db(self):
        stats = TrajectoryDatabase().stats()
        assert stats.n_trajectories == 0
        assert stats.mean_length == 0.0

    def test_stats_as_rows(self, db):
        labels = [label for label, _v in db.stats().as_rows()]
        assert "mean of |T|" in labels


class TestTransforms:
    def test_map(self, db):
        halved = db.map(lambda t: t.thin(2))
        assert len(halved["b"]) == 3

    def test_map_drops_empty(self, db):
        emptied = db.map(lambda t: t.slice_time(1e9, 2e9))
        assert len(emptied) == 0

    def test_downsample_preserves_name(self, db):
        rng = np.random.default_rng(0)
        out = db.downsample(0.9, rng)
        assert out.name == "test"

    def test_head_duration(self, db):
        out = db.head_duration(3601.0)
        assert len(out["b"]) == 2

    def test_subset(self, db):
        sub = db.subset(["b"])
        assert sub.ids() == ["b"]

    def test_subset_missing_raises(self, db):
        with pytest.raises(KeyError):
            db.subset(["zzz"])

    def test_sample_ids(self, db):
        rng = np.random.default_rng(0)
        ids = db.sample_ids(2, rng)
        assert sorted(ids) == ["a", "b"]

    def test_sample_ids_distinct(self):
        rng = np.random.default_rng(0)
        db = TrajectoryDatabase([make_traj(i) for i in range(20)])
        ids = db.sample_ids(10, rng)
        assert len(set(ids)) == 10

    def test_sample_too_many(self, db):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            db.sample_ids(5, rng)
