"""End-to-end integration: generate -> persist -> fit -> link -> evaluate."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.linker import FTLLinker
from repro.core.metrics import perceptiveness, selectiveness
from repro.core.models import CompatibilityModel
from repro.datasets.catalog import build_scenario
from repro.geo.units import days_to_seconds
from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.io.jsonl_io import load_model_json, save_model_json
from repro.io.sqlite_store import SQLiteTrajectoryStore
from repro.synth.city import CityModel
from repro.synth.noise import TowerSnapNoise, GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import make_paired_databases


class TestFullWorkflow:
    def test_csv_round_trip_preserves_linking(self, small_pair, tmp_path):
        """Linking quality is unchanged after a CSV round trip."""
        rng = np.random.default_rng(0)
        write_trajectories_csv(small_pair.p_db, tmp_path / "p.csv")
        write_trajectories_csv(small_pair.q_db, tmp_path / "q.csv")
        p_db = read_trajectories_csv(tmp_path / "p.csv", name="P")
        q_db = read_trajectories_csv(tmp_path / "q.csv", name="Q")

        linker = FTLLinker(FTLConfig(), phi_r=0.1).fit(p_db, q_db, rng)
        qids = [str(qid) for qid in small_pair.sample_queries(10, rng)]
        hits = sum(
            1
            for pid in qids
            if linker.link(p_db[pid]).contains(str(small_pair.truth[pid]))
        )
        assert hits >= 7

    def test_sqlite_round_trip_preserves_linking(self, small_pair, tmp_path):
        rng = np.random.default_rng(0)
        with SQLiteTrajectoryStore(tmp_path / "s.db") as store:
            store.save(small_pair.p_db, "P")
            store.save(small_pair.q_db, "Q")
            p_db = store.load("P")
            q_db = store.load("Q")
        linker = FTLLinker(FTLConfig(), phi_r=0.1).fit(p_db, q_db, rng)
        pid = str(next(iter(small_pair.truth)))
        result = linker.link(p_db[pid])
        assert result.contains(str(small_pair.truth[pid]))

    def test_model_cache_workflow(self, small_pair, tmp_path):
        """Fit once, save, reload, link with the loaded models."""
        rng = np.random.default_rng(0)
        config = FTLConfig()
        mr = CompatibilityModel.fit_rejection(
            [small_pair.p_db, small_pair.q_db], config
        )
        ma = CompatibilityModel.fit_acceptance(
            [small_pair.p_db, small_pair.q_db], config, rng
        )
        save_model_json(mr, tmp_path / "mr.json")
        save_model_json(ma, tmp_path / "ma.json")

        linker = FTLLinker(config, phi_r=0.1).with_models(
            load_model_json(tmp_path / "mr.json"),
            load_model_json(tmp_path / "ma.json"),
            small_pair.q_db,
        )
        qids = small_pair.sample_queries(8, np.random.default_rng(1))
        hits = sum(
            1
            for pid in qids
            if linker.link(small_pair.p_db[pid]).contains(small_pair.truth[pid])
        )
        assert hits >= 5


class TestCdrCommuterScenario:
    """The paper's motivating setting: anonymous transit vs eponymous CDR."""

    def test_tower_noise_linking_works(self):
        rng = np.random.default_rng(8)
        city = CityModel.generate(rng)
        agents = generate_population(
            city, 25, days_to_seconds(10), rng, mobility="commuter"
        )
        cdr = ObservationService(
            "CDR", rate_per_hour=0.9, noise=TowerSnapNoise(city), day_fraction=0.9
        )
        transit = ObservationService(
            "transit", rate_per_hour=0.25, noise=GaussianNoise(100.0),
            day_fraction=0.95,
        )
        pair = make_paired_databases(agents, transit, cdr, rng)
        linker = FTLLinker(FTLConfig(), phi_r=0.2).fit(pair.p_db, pair.q_db, rng)
        results = {}
        qids = pair.sample_queries(min(15, len(pair.truth)), rng)
        for pid in qids:
            results[pid] = linker.link(pair.p_db[pid]).candidate_ids()
        perc = perceptiveness(results, pair.truth)
        sel = selectiveness(results, len(pair.q_db))
        # Commuters are harder than taxis (they sit still most of the day),
        # but linking must still clearly beat the random-guess baseline.
        assert perc >= 0.4
        assert sel < 0.5


class TestCatalogEndToEnd:
    @pytest.mark.parametrize("name", ["SD-mini", "TD-mini"])
    def test_catalog_scenarios_link(self, name):
        rng = np.random.default_rng(0)
        pair = build_scenario(name)
        linker = FTLLinker(FTLConfig(), phi_r=0.3).fit(pair.p_db, pair.q_db, rng)
        qids = pair.sample_queries(min(10, len(pair.truth)), rng)
        results = {
            pid: linker.link(pair.p_db[pid]).candidate_ids() for pid in qids
        }
        # Sparse mini configs are intentionally hard; require clear
        # superiority over chance, not perfection.
        assert perceptiveness(results, pair.truth) >= 0.2
        assert selectiveness(results, len(pair.q_db)) < 0.2

    def test_rate_ordering_sc_beats_sa(self):
        """Fig. 5(a) trend: higher sampling rate -> better perceptiveness."""
        rng = np.random.default_rng(0)
        outcomes = {}
        for name in ("SA-mini", "SC-mini"):
            pair = build_scenario(name)
            linker = FTLLinker(FTLConfig(), phi_r=0.3).fit(
                pair.p_db, pair.q_db, rng
            )
            qids = pair.sample_queries(25, np.random.default_rng(1))
            results = {
                pid: linker.link(pair.p_db[pid]).candidate_ids() for pid in qids
            }
            outcomes[name] = perceptiveness(results, pair.truth)
        assert outcomes["SC-mini"] >= outcomes["SA-mini"]
