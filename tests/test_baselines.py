"""Trajectory-similarity baselines: P2T, DTW, LCSS, EDR."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.common import (
    SimilarityRetriever,
    pairwise_distances,
    rank_by_distance,
)
from repro.baselines.dtw import dtw_distance
from repro.baselines.edr import edr_distance, edr_raw
from repro.baselines.lcss import lcss_distance, lcss_length, lcss_similarity
from repro.baselines.p2t import p2t_distance
from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import EmptyTrajectoryError, ValidationError


def traj(xs, ys=None, traj_id=None):
    n = len(xs)
    return Trajectory(
        np.arange(n, dtype=float),
        np.asarray(xs, dtype=float),
        np.zeros(n) if ys is None else np.asarray(ys, dtype=float),
        traj_id,
    )


def random_traj(rng, n, traj_id=None, scale=100.0):
    return Trajectory(
        np.sort(rng.uniform(0, 1e4, n)),
        np.cumsum(rng.normal(0, scale, n)),
        np.cumsum(rng.normal(0, scale, n)),
        traj_id,
    )


class TestPairwiseDistances:
    def test_shape_and_values(self):
        p = traj([0.0, 3.0])
        q = traj([0.0, 4.0, 0.0], ys=[0.0, 0.0, 4.0])
        d = pairwise_distances(p, q)
        assert d.shape == (2, 3)
        assert d[0, 1] == 4.0
        assert d[1, 2] == 5.0


class TestP2T:
    def test_identical_zero(self):
        t = traj([1.0, 2.0, 3.0])
        assert p2t_distance(t, t) == 0.0

    def test_hand_computed(self):
        p = traj([0.0, 10.0])
        q = traj([1.0])
        assert p2t_distance(p, q) == pytest.approx((1.0 + 9.0) / 2)

    def test_asymmetric(self):
        p = traj([0.0])
        q = traj([0.0, 100.0])
        assert p2t_distance(p, q) == 0.0
        assert p2t_distance(q, p) == 50.0

    def test_chunking_consistent(self):
        rng = np.random.default_rng(0)
        p = random_traj(rng, 50)
        q = random_traj(rng, 60)
        assert p2t_distance(p, q, chunk=7) == pytest.approx(
            p2t_distance(p, q, chunk=4096)
        )

    def test_empty_rejected(self):
        with pytest.raises(EmptyTrajectoryError):
            p2t_distance(traj([]), traj([1.0]))


class TestDTW:
    def test_identical_zero(self):
        rng = np.random.default_rng(1)
        t = random_traj(rng, 20)
        assert dtw_distance(t, t) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            p = random_traj(rng, 10)
            q = random_traj(rng, 13)
            assert dtw_distance(p, q) == pytest.approx(_dtw_brute(p, q))

    def test_symmetric(self):
        rng = np.random.default_rng(3)
        p, q = random_traj(rng, 15), random_traj(rng, 12)
        assert dtw_distance(p, q) == pytest.approx(dtw_distance(q, p))

    def test_single_points(self):
        p = traj([0.0])
        q = traj([3.0], ys=[4.0])
        assert dtw_distance(p, q) == 5.0

    def test_band_equals_unbanded_when_wide(self):
        rng = np.random.default_rng(4)
        p, q = random_traj(rng, 12), random_traj(rng, 12)
        assert dtw_distance(p, q, band=12) == pytest.approx(dtw_distance(p, q))

    def test_band_never_below_unbanded(self):
        rng = np.random.default_rng(5)
        p, q = random_traj(rng, 20), random_traj(rng, 20)
        assert dtw_distance(p, q, band=3) >= dtw_distance(p, q) - 1e-9

    def test_negative_band_rejected(self):
        with pytest.raises(ValidationError):
            dtw_distance(traj([0.0]), traj([0.0]), band=-1)

    def test_empty_rejected(self):
        with pytest.raises(EmptyTrajectoryError):
            dtw_distance(traj([]), traj([1.0]))

    def test_shifted_cheaper_than_far(self):
        base = traj(np.linspace(0, 100, 20))
        near = traj(np.linspace(0, 100, 20) + 5.0)
        far = traj(np.linspace(0, 100, 20) + 500.0)
        assert dtw_distance(base, near) < dtw_distance(base, far)


def _dtw_brute(p, q):
    n, m = len(p), len(q)
    dp = [[math.inf] * (m + 1) for _ in range(n + 1)]
    dp[0][0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            c = math.hypot(p.xs[i - 1] - q.xs[j - 1], p.ys[i - 1] - q.ys[j - 1])
            dp[i][j] = c + min(dp[i - 1][j - 1], dp[i - 1][j], dp[i][j - 1])
    return dp[n][m]


def _lcss_brute(p, q, eps, delta=None):
    n, m = len(p), len(q)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            d = math.hypot(p.xs[i - 1] - q.xs[j - 1], p.ys[i - 1] - q.ys[j - 1])
            ok = d <= eps and (delta is None or abs((i - 1) - (j - 1)) <= delta)
            dp[i][j] = max(
                dp[i - 1][j - 1] + (1 if ok else 0), dp[i - 1][j], dp[i][j - 1]
            )
    return dp[n][m]


class TestLCSS:
    def test_identical_full_match(self):
        rng = np.random.default_rng(6)
        t = random_traj(rng, 15)
        assert lcss_length(t, t, eps_m=1.0) == 15
        assert lcss_similarity(t, t, eps_m=1.0) == 1.0
        assert lcss_distance(t, t, eps_m=1.0) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            p = random_traj(rng, 9, scale=50.0)
            q = random_traj(rng, 11, scale=50.0)
            assert lcss_length(p, q, eps_m=120.0) == _lcss_brute(p, q, 120.0)

    def test_delta_constrains(self):
        rng = np.random.default_rng(8)
        p = random_traj(rng, 10, scale=10.0)
        q = random_traj(rng, 10, scale=10.0)
        free = lcss_length(p, q, eps_m=100.0)
        constrained = lcss_length(p, q, eps_m=100.0, delta=1)
        assert constrained <= free
        assert constrained == _lcss_brute(p, q, 100.0, delta=1)

    def test_no_matches_zero(self):
        p = traj([0.0, 1.0])
        q = traj([1000.0, 2000.0])
        assert lcss_length(p, q, eps_m=10.0) == 0
        assert lcss_distance(p, q, eps_m=10.0) == 1.0

    def test_bad_params(self):
        t = traj([0.0])
        with pytest.raises(ValidationError):
            lcss_length(t, t, eps_m=-1.0)
        with pytest.raises(ValidationError):
            lcss_length(t, t, eps_m=1.0, delta=-1)
        with pytest.raises(EmptyTrajectoryError):
            lcss_length(traj([]), t, eps_m=1.0)


def _edr_brute(p, q, eps):
    n, m = len(p), len(q)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            d = math.hypot(p.xs[i - 1] - q.xs[j - 1], p.ys[i - 1] - q.ys[j - 1])
            sub = dp[i - 1][j - 1] + (0 if d <= eps else 1)
            dp[i][j] = min(sub, dp[i - 1][j] + 1, dp[i][j - 1] + 1)
    return dp[n][m]


class TestEDR:
    def test_identical_zero(self):
        rng = np.random.default_rng(9)
        t = random_traj(rng, 12)
        assert edr_raw(t, t, eps_m=1.0) == 0
        assert edr_distance(t, t, eps_m=1.0) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(10)
        for _ in range(5):
            p = random_traj(rng, 9, scale=50.0)
            q = random_traj(rng, 12, scale=50.0)
            assert edr_raw(p, q, eps_m=120.0) == _edr_brute(p, q, 120.0)

    def test_completely_different(self):
        p = traj([0.0, 1.0, 2.0])
        q = traj([9e5, 9e5 + 1])
        # All substitutions cost 1 plus one deletion: total = max(n, m).
        assert edr_raw(p, q, eps_m=1.0) == 3
        assert edr_distance(p, q, eps_m=1.0) == 1.0

    def test_length_difference_costs(self):
        p = traj([0.0, 0.0, 0.0, 0.0])
        q = traj([0.0])
        assert edr_raw(p, q, eps_m=1.0) == 3

    def test_bad_params(self):
        t = traj([0.0])
        with pytest.raises(ValidationError):
            edr_raw(t, t, eps_m=-1.0)
        with pytest.raises(EmptyTrajectoryError):
            edr_raw(traj([]), t, eps_m=1.0)

    @given(st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_bounds(self, n, m):
        rng = np.random.default_rng(n * 100 + m)
        p = random_traj(rng, n)
        q = random_traj(rng, m)
        raw = edr_raw(p, q, eps_m=100.0)
        assert abs(n - m) <= raw <= max(n, m)


class TestRetriever:
    @pytest.fixture
    def db(self):
        rng = np.random.default_rng(11)
        return TrajectoryDatabase(
            [random_traj(rng, 20, traj_id=f"c{i}") for i in range(10)]
        )

    def test_rank_by_distance_sorted(self, db):
        query = db["c3"]
        ranked = rank_by_distance(query, db, p2t_distance)
        dists = [d for _cid, d in ranked]
        assert dists == sorted(dists)
        assert ranked[0][0] == "c3"

    def test_top_k(self, db):
        retriever = SimilarityRetriever(p2t_distance)
        top = retriever.top_k(db["c5"], db, 3)
        assert len(top) == 3
        assert top[0] == "c5"

    def test_max_points_caps(self, db):
        seen_lengths = []

        def spy(p, q):
            seen_lengths.append((len(p), len(q)))
            return p2t_distance(p, q)

        retriever = SimilarityRetriever(spy, max_points=5)
        retriever.rank(db["c0"], db)
        assert all(n <= 5 and m <= 5 for n, m in seen_lengths)

    def test_invalid_params(self, db):
        with pytest.raises(ValidationError):
            SimilarityRetriever(p2t_distance, max_points=1)
        retriever = SimilarityRetriever(p2t_distance)
        with pytest.raises(ValidationError):
            retriever.top_k(db["c0"], db, 0)

    def test_self_retrieval_across_measures(self, db):
        for distance in (
            p2t_distance,
            dtw_distance,
            lambda p, q: lcss_distance(p, q, eps_m=50.0),
            lambda p, q: edr_distance(p, q, eps_m=50.0),
        ):
            retriever = SimilarityRetriever(distance)
            assert retriever.top_k(db["c7"], db, 1) == ["c7"]
