"""Candidate pre-filters."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.linker import FTLLinker
from repro.core.prefilter import (
    MutualSegmentCountPrefilter,
    NullPrefilter,
    SpatialOverlapPrefilter,
    TimeOverlapPrefilter,
)
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


def traj(ts, traj_id=None):
    n = len(ts)
    return Trajectory(ts, np.zeros(n), np.zeros(n), traj_id)


class TestNullPrefilter:
    def test_keeps_everything(self):
        pf = NullPrefilter()
        assert pf.keep(traj([0.0]), traj([1e9]))


class TestTimeOverlap:
    def test_overlapping_kept(self):
        pf = TimeOverlapPrefilter(min_overlap_s=50.0)
        assert pf.keep(traj([0.0, 100.0]), traj([40.0, 140.0]))

    def test_short_overlap_dropped(self):
        pf = TimeOverlapPrefilter(min_overlap_s=100.0)
        assert not pf.keep(traj([0.0, 100.0]), traj([90.0, 300.0]))

    def test_disjoint_dropped(self):
        pf = TimeOverlapPrefilter(min_overlap_s=0.0)
        assert not pf.keep(traj([0.0, 10.0]), traj([100.0, 200.0]))

    def test_empty_dropped(self):
        pf = TimeOverlapPrefilter(min_overlap_s=0.0)
        assert not pf.keep(traj([]), traj([0.0]))

    def test_validation(self):
        with pytest.raises(ValidationError):
            TimeOverlapPrefilter(-1.0)


class TestSpatialOverlap:
    def _traj_at(self, x, y, n=3):
        return Trajectory(
            60.0 * np.arange(n),
            np.full(n, float(x)),
            np.full(n, float(y)),
        )

    def test_nearby_kept(self):
        pf = SpatialOverlapPrefilter(margin_m=1000.0)
        assert pf.keep(self._traj_at(0, 0), self._traj_at(500, 0))

    def test_far_apart_dropped(self):
        pf = SpatialOverlapPrefilter(margin_m=1000.0)
        assert not pf.keep(self._traj_at(0, 0), self._traj_at(50_000, 0))

    def test_overlapping_boxes_kept(self):
        pf = SpatialOverlapPrefilter(margin_m=0.0)
        a = Trajectory([0.0, 60.0], [0.0, 100.0], [0.0, 100.0])
        b = Trajectory([0.0, 60.0], [50.0, 150.0], [50.0, 150.0])
        assert pf.keep(a, b)

    def test_diagonal_gap_measured(self):
        pf = SpatialOverlapPrefilter(margin_m=1400.0)
        # Boxes separated by 1000 m in x and 1000 m in y: gap ~1414 m.
        assert not pf.keep(self._traj_at(0, 0), self._traj_at(1000, 1000))
        assert SpatialOverlapPrefilter(1500.0).keep(
            self._traj_at(0, 0), self._traj_at(1000, 1000)
        )

    def test_empty_dropped(self):
        pf = SpatialOverlapPrefilter()
        assert not pf.keep(traj([]), self._traj_at(0, 0))

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpatialOverlapPrefilter(-1.0)


class TestMutualSegmentCount:
    def test_interleaved_kept(self):
        config = FTLConfig()
        pf = MutualSegmentCountPrefilter(config, min_segments=3)
        p = traj([0.0, 120.0, 240.0])
        q = traj([60.0, 180.0, 300.0])
        assert pf.keep(p, q)  # alternating -> 5 in-horizon mutual segments

    def test_disjoint_windows_dropped(self):
        config = FTLConfig(horizon_s=3600.0)
        pf = MutualSegmentCountPrefilter(config, min_segments=1)
        p = traj([0.0, 60.0])
        q = traj([1e6, 1e6 + 60.0])  # junction gap far beyond horizon
        assert not pf.keep(p, q)

    def test_threshold_respected(self):
        config = FTLConfig()
        p = traj([0.0])
        q = traj([60.0])
        assert MutualSegmentCountPrefilter(config, 1).keep(p, q)
        assert not MutualSegmentCountPrefilter(config, 2).keep(p, q)

    def test_empty_dropped(self):
        pf = MutualSegmentCountPrefilter(FTLConfig())
        assert not pf.keep(traj([]), traj([1.0]))

    def test_validation(self):
        with pytest.raises(ValidationError):
            MutualSegmentCountPrefilter(FTLConfig(), min_segments=0)

    def test_matches_profile_count(self, small_pair):
        """The fast count agrees with the full profile extraction."""
        from repro.core.alignment import mutual_segment_profile

        config = FTLConfig()
        trajs = list(small_pair.p_db)[:4] + list(small_pair.q_db)[:4]
        for i in range(0, len(trajs) - 1, 2):
            p, q = trajs[i], trajs[i + 1]
            profile = mutual_segment_profile(p, q, config)
            in_horizon = int(
                np.count_nonzero(profile.buckets * config.time_unit_s
                                 < config.horizon_s)
            )
            threshold_pf = MutualSegmentCountPrefilter(config, max(in_horizon, 1))
            if in_horizon >= 1:
                assert threshold_pf.keep(p, q) or in_horizon == 0


class TestLinkerIntegration:
    def test_prefiltered_results_subset(self, small_pair, fitted_models):
        mr, ma = fitted_models
        rng = np.random.default_rng(0)
        base = FTLLinker(mr.config, phi_r=0.1).with_models(
            mr, ma, small_pair.q_db
        )
        filtered = FTLLinker(
            mr.config, phi_r=0.1,
            prefilter=MutualSegmentCountPrefilter(mr.config, 2),
        ).with_models(mr, ma, small_pair.q_db)
        for pid in small_pair.sample_queries(8, rng):
            all_ids = set(base.link(small_pair.p_db[pid]).candidate_ids())
            kept_ids = set(filtered.link(small_pair.p_db[pid]).candidate_ids())
            assert kept_ids <= all_ids

    def test_prefilter_keeps_perceptiveness(self, small_pair, fitted_models):
        # The conservative overlap prefilter must not lose true matches
        # on this fully-overlapping scenario.
        mr, ma = fitted_models
        rng = np.random.default_rng(1)
        linker = FTLLinker(
            mr.config, phi_r=0.1, prefilter=TimeOverlapPrefilter(3600.0)
        ).with_models(mr, ma, small_pair.q_db)
        hits = 0
        qids = small_pair.sample_queries(12, rng)
        for pid in qids:
            if linker.link(small_pair.p_db[pid]).contains(small_pair.truth[pid]):
                hits += 1
        assert hits >= 8
