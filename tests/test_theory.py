"""Section VI theory: mutual-segment count and length distributions."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ValidationError
from repro.stats.theory import (
    expected_mutual_segments,
    expected_mutual_segments_approx,
    mutual_segment_count_pmf,
    mutual_segment_count_pmf_poisson,
    mutual_segment_length_pdf,
    poisson_pmf,
    simulate_mutual_segment_counts,
    simulate_mutual_segment_lengths,
)


class TestExpectation:
    def test_closed_form_components(self):
        lam_p, lam_q = 0.5, 2.0
        total = lam_p + lam_q
        lead = 2 * lam_p * lam_q / total
        corr = (1 - math.exp(-total)) * 2 * lam_p * lam_q / total**2
        assert expected_mutual_segments(lam_p, lam_q) == pytest.approx(lead - corr)

    def test_symmetric(self):
        assert expected_mutual_segments(1.0, 3.0) == pytest.approx(
            expected_mutual_segments(3.0, 1.0)
        )

    def test_approx_exceeds_exact(self):
        # E^(X) = E(X) + eps with eps in (0, 0.5) (paper Section VI).
        for lam_p, lam_q in [(0.5, 2.0), (4.0, 10.0), (1.0, 1.0)]:
            exact = expected_mutual_segments(lam_p, lam_q)
            approx = expected_mutual_segments_approx(lam_p, lam_q)
            assert 0.0 < approx - exact < 0.5

    def test_corollary61_bound(self):
        # Number of mutual segments bounded by 2 * min(lam_p, lam_q).
        for lam_p, lam_q in [(0.5, 2.0), (4.0, 10.0), (2.0, 2.0)]:
            approx = expected_mutual_segments_approx(lam_p, lam_q)
            assert approx <= 2 * min(lam_p, lam_q) + 1e-12

    def test_limit_large_lam_q(self):
        # lim_{lam_q -> inf} E(X) = 2 lam_p.
        assert expected_mutual_segments_approx(1.0, 1e9) == pytest.approx(
            2.0, rel=1e-6
        )

    def test_invalid_rates(self):
        with pytest.raises(ValidationError):
            expected_mutual_segments(0.0, 1.0)
        with pytest.raises(ValidationError):
            expected_mutual_segments_approx(1.0, -2.0)


class TestPoissonPmf:
    def test_matches_scipy(self):
        ks = np.arange(12)
        assert np.allclose(poisson_pmf(3.3, ks), sps.poisson.pmf(ks, 3.3))

    def test_zero_lambda(self):
        assert list(poisson_pmf(0.0, np.array([0, 1, 2]))) == [1.0, 0.0, 0.0]

    def test_negative_k_rejected(self):
        with pytest.raises(ValidationError):
            poisson_pmf(1.0, np.array([-1]))


class TestExactPmf:
    @pytest.mark.parametrize("lam_p,lam_q", [(0.5, 2.0), (4.0, 10.0), (1.0, 1.0)])
    def test_sums_to_one(self, lam_p, lam_q):
        max_x = int(4 * (lam_p + lam_q)) + 20
        fx = mutual_segment_count_pmf(lam_p, lam_q, max_x)
        assert fx.sum() == pytest.approx(1.0, abs=1e-8)

    @pytest.mark.parametrize("lam_p,lam_q", [(0.5, 2.0), (4.0, 10.0)])
    def test_mean_matches_closed_form(self, lam_p, lam_q):
        max_x = int(6 * (lam_p + lam_q)) + 30
        fx = mutual_segment_count_pmf(lam_p, lam_q, max_x)
        mean = (fx * np.arange(max_x + 1)).sum()
        assert mean == pytest.approx(
            expected_mutual_segments(lam_p, lam_q), abs=1e-6
        )

    def test_paper_x0_closed_form(self):
        # fX(0) = e^{-lam_p} + e^{-lam_q} - e^{-(lam_p+lam_q)}.
        lam_p, lam_q = 0.5, 2.0
        fx = mutual_segment_count_pmf(lam_p, lam_q, 5)
        expected = (
            math.exp(-lam_p) + math.exp(-lam_q) - math.exp(-(lam_p + lam_q))
        )
        assert fx[0] == pytest.approx(expected, abs=1e-10)

    def test_symmetric_in_rates(self):
        a = mutual_segment_count_pmf(0.7, 2.5, 10)
        b = mutual_segment_count_pmf(2.5, 0.7, 10)
        assert np.allclose(a, b)

    def test_matches_simulation(self, rng):
        lam_p, lam_q = 0.5, 2.0
        sim = simulate_mutual_segment_counts(lam_p, lam_q, 30_000, rng)
        fx = mutual_segment_count_pmf(lam_p, lam_q, 8)
        for x in range(5):
            empirical = (sim == x).mean()
            assert empirical == pytest.approx(fx[x], abs=0.01)

    def test_bad_max_x(self):
        with pytest.raises(ValidationError):
            mutual_segment_count_pmf(1.0, 1.0, -1)


class TestPoissonApproximation:
    def test_is_poisson_of_approx_mean(self):
        lam_p, lam_q = 4.0, 10.0
        approx = mutual_segment_count_pmf_poisson(lam_p, lam_q, 15)
        mean = expected_mutual_segments_approx(lam_p, lam_q)
        assert np.allclose(approx, sps.poisson.pmf(np.arange(16), mean))

    def test_close_to_exact_for_large_rates(self):
        # Fig. 4(b): the bias shrinks as the rates grow.
        fx = mutual_segment_count_pmf(4.0, 10.0, 20)
        approx = mutual_segment_count_pmf_poisson(4.0, 10.0, 20)
        assert np.abs(fx - approx).max() < 0.08

    def test_bias_direction(self):
        # f^X is right-biased: its mean exceeds the exact mean.
        lam_p, lam_q = 0.5, 2.0
        assert expected_mutual_segments_approx(
            lam_p, lam_q
        ) > expected_mutual_segments(lam_p, lam_q)


class TestLengthDistribution:
    def test_pdf_is_exponential(self):
        ys = np.linspace(0, 3, 50)
        pdf = mutual_segment_length_pdf(0.5, 2.0, ys)
        assert np.allclose(pdf, sps.expon.pdf(ys, scale=1 / 2.5))

    def test_corollary62_mean(self, rng):
        lam_p, lam_q = 1.0, 2.0
        lengths = simulate_mutual_segment_lengths(lam_p, lam_q, 5000.0, rng)
        assert lengths.mean() == pytest.approx(1 / (lam_p + lam_q), rel=0.05)

    def test_simulated_lengths_fit_exponential(self, rng):
        lam_p, lam_q = 0.5, 2.0
        lengths = simulate_mutual_segment_lengths(lam_p, lam_q, 20_000.0, rng)
        _stat, pvalue = sps.kstest(lengths, "expon", args=(0, 1 / 2.5))
        assert pvalue > 0.001

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValidationError):
            mutual_segment_length_pdf(1.0, 1.0, np.array([-0.1]))


class TestSimulators:
    def test_count_simulation_size(self, rng):
        sim = simulate_mutual_segment_counts(1.0, 1.0, 17, rng)
        assert sim.shape == (17,)
        assert sim.dtype == np.int64

    def test_zero_units(self, rng):
        assert simulate_mutual_segment_counts(1.0, 1.0, 0, rng).size == 0

    def test_negative_units_rejected(self, rng):
        with pytest.raises(ValidationError):
            simulate_mutual_segment_counts(1.0, 1.0, -1, rng)

    def test_sim_mean_matches_theory(self, rng):
        lam_p, lam_q = 2.0, 3.0
        sim = simulate_mutual_segment_counts(lam_p, lam_q, 20_000, rng)
        assert sim.mean() == pytest.approx(
            expected_mutual_segments(lam_p, lam_q), rel=0.05
        )
