"""Multi-source chaining across three databases."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.multisource import (
    IdentityChain,
    chain_accuracy,
    chain_assignments,
    enrich_chain,
    link_chain,
)
from repro.errors import ValidationError
from repro.geo.units import days_to_seconds
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population


class TestChainAssignments:
    def test_composes_two_hops(self):
        hop1 = {"a1": "b1", "a2": "b2"}
        hop2 = {"b1": "c1", "b2": "c2"}
        chains = chain_assignments([hop1, hop2])
        assert sorted(c.ids for c in chains) == [
            ("a1", "b1", "c1"),
            ("a2", "b2", "c2"),
        ]

    def test_broken_hop_drops_chain(self):
        hop1 = {"a1": "b1", "a2": "b2"}
        hop2 = {"b1": "c1"}  # b2 unmatched
        chains = chain_assignments([hop1, hop2])
        assert [c.ids for c in chains] == [("a1", "b1", "c1")]

    def test_single_hop(self):
        chains = chain_assignments([{"a": "b"}])
        assert chains[0].ids == ("a", "b")
        assert chains[0].head == "a"
        assert chains[0].tail == "b"

    def test_empty_hops_rejected(self):
        with pytest.raises(ValidationError):
            chain_assignments([])


class TestConfidencePropagation:
    def test_confidence_is_product_of_hop_scores(self):
        hop1 = {"a1": "b1", "a2": "b2"}
        hop2 = {"b1": "c1", "b2": "c2"}
        scores = [{"a1": 0.8, "a2": 0.5}, {"b1": 0.9, "b2": 0.4}]
        chains = chain_assignments([hop1, hop2], hop_scores=scores)
        by_head = {c.head: c for c in chains}
        assert by_head["a1"].confidence == pytest.approx(0.8 * 0.9)
        assert by_head["a2"].confidence == pytest.approx(0.5 * 0.4)

    def test_confidence_defaults_to_one_without_scores(self):
        chains = chain_assignments([{"a": "b"}, {"b": "c"}])
        assert all(c.confidence == 1.0 for c in chains)

    def test_missing_score_counts_as_one(self):
        chains = chain_assignments(
            [{"a": "b"}, {"b": "c"}], hop_scores=[{"a": 0.5}, {}]
        )
        assert chains[0].confidence == pytest.approx(0.5)

    def test_confidence_monotone_nonincreasing_with_hops(self):
        """Each extra hop can only shrink (or keep) chain confidence."""
        scores = [{"a": 0.9}, {"b": 0.7}, {"c": 0.6}]
        hops = [{"a": "b"}, {"b": "c"}, {"c": "d"}]
        prev = 1.0
        for k in range(1, len(hops) + 1):
            chains = chain_assignments(hops[:k], hop_scores=scores[:k])
            assert chains[0].confidence <= prev
            prev = chains[0].confidence

    def test_min_confidence_prunes_weak_chains(self):
        hop1 = {"a1": "b1", "a2": "b2"}
        hop2 = {"b1": "c1", "b2": "c2"}
        scores = [{"a1": 0.9, "a2": 0.2}, {"b1": 0.9, "b2": 0.2}]
        chains = chain_assignments(
            [hop1, hop2], hop_scores=scores, min_confidence=0.5
        )
        assert [c.head for c in chains] == ["a1"]

    def test_hop_scores_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            chain_assignments([{"a": "b"}], hop_scores=[{}, {}])

    def test_min_confidence_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            chain_assignments([{"a": "b"}], min_confidence=1.5)


class TestChainAccuracy:
    def test_all_correct(self):
        chains = [IdentityChain(("a", "b", "c"))]
        truths = [{"a": "b"}, {"b": "c"}]
        assert chain_accuracy(chains, truths) == 1.0

    def test_partial(self):
        chains = [
            IdentityChain(("a1", "b1", "c1")),
            IdentityChain(("a2", "b9", "c9")),
        ]
        truths = [{"a1": "b1", "a2": "b2"}, {"b1": "c1"}]
        assert chain_accuracy(chains, truths) == 0.5

    def test_empty_chains(self):
        assert chain_accuracy([], [{"a": "b"}]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            chain_accuracy([IdentityChain(("a", "b"))], [{"a": "b"}, {"b": "c"}])


@pytest.fixture(scope="module")
def three_source_scenario():
    """Three services observing the same 15 agents."""
    rng = np.random.default_rng(33)
    city = CityModel.generate(rng)
    agents = generate_population(city, 15, days_to_seconds(6), rng)
    from repro.core.database import TrajectoryDatabase

    services = [
        ObservationService("transit", 0.6, GaussianNoise(60.0)),
        ObservationService("cdr", 0.9, GaussianNoise(120.0)),
        ObservationService("bank", 0.3, GaussianNoise(40.0)),
    ]
    databases = []
    truths: list[dict] = [{}, {}]
    prefixes = ["A", "B", "C"]
    observed = {
        prefix: TrajectoryDatabase(name=svc.name)
        for prefix, svc in zip(prefixes, services)
    }
    for agent in agents:
        for prefix, svc in zip(prefixes, services):
            traj = svc.observe(agent.path, rng, traj_id=f"{prefix}{agent.agent_id}")
            if len(traj) >= 2:
                observed[prefix].add(traj)
    for agent in agents:
        a, b, c = (f"A{agent.agent_id}", f"B{agent.agent_id}",
                   f"C{agent.agent_id}")
        if a in observed["A"] and b in observed["B"]:
            truths[0][a] = b
        if b in observed["B"] and c in observed["C"]:
            truths[1][b] = c
    return [observed[p] for p in prefixes], truths


class TestLinkChain:
    def test_end_to_end_chaining(self, three_source_scenario):
        databases, truths = three_source_scenario
        rng = np.random.default_rng(0)
        chains = link_chain(databases, FTLConfig(), rng)
        assert len(chains) >= 0.5 * len(databases[0])
        assert chain_accuracy(chains, truths) >= 0.7

    def test_chains_carry_link_confidence(self, three_source_scenario):
        databases, _truths = three_source_scenario
        rng = np.random.default_rng(0)
        chains = link_chain(databases, FTLConfig(), rng)
        assert all(0.0 < c.confidence <= 1.0 for c in chains)
        # With real (noisy) hops at least one chain must be uncertain.
        assert any(c.confidence < 1.0 for c in chains)

    def test_min_confidence_filters_link_chain(self, three_source_scenario):
        databases, _truths = three_source_scenario
        rng = np.random.default_rng(0)
        all_chains = link_chain(databases, FTLConfig(), rng)
        threshold = sorted(c.confidence for c in all_chains)[len(all_chains) // 2]
        rng = np.random.default_rng(0)
        kept = link_chain(
            databases, FTLConfig(), rng, min_confidence=threshold
        )
        assert 0 < len(kept) < len(all_chains)
        assert all(c.confidence >= threshold for c in kept)

    def test_greedy_method_also_chains(self, three_source_scenario):
        databases, truths = three_source_scenario
        rng = np.random.default_rng(0)
        chains = link_chain(databases, FTLConfig(), rng, method="greedy")
        assert len(chains) >= 0.5 * len(databases[0])
        assert chain_accuracy(chains, truths) >= 0.7

    def test_unknown_method_rejected(self, three_source_scenario):
        databases, _truths = three_source_scenario
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            link_chain(databases, FTLConfig(), rng, method="hungarian-dense")

    def test_requires_two_databases(self, three_source_scenario):
        databases, _truths = three_source_scenario
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            link_chain(databases[:1], FTLConfig(), rng)

    def test_enrich_chain_merges_all_sources(self, three_source_scenario):
        databases, truths = three_source_scenario
        rng = np.random.default_rng(0)
        chains = link_chain(databases, FTLConfig(), rng)
        chain = chains[0]
        merged = enrich_chain(chain, databases)
        expected = sum(len(db[tid]) for tid, db in zip(chain.ids, databases))
        assert len(merged) == expected
        assert np.all(np.diff(merged.ts) >= 0)
        assert merged.traj_id == chain.ids

    def test_enrich_length_mismatch(self, three_source_scenario):
        databases, _truths = three_source_scenario
        with pytest.raises(ValidationError):
            enrich_chain(IdentityChain(("A0", "B0")), databases)
