"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    perceptiveness_ci,
    selectiveness_ci,
)


class TestBootstrapCI:
    def test_estimate_is_statistic_of_data(self, rng):
        values = [0.0, 1.0, 1.0, 1.0]
        ci = bootstrap_ci(values, rng)
        assert ci.estimate == pytest.approx(0.75)

    def test_interval_contains_estimate(self, rng):
        values = np.random.default_rng(0).random(50)
        ci = bootstrap_ci(values, rng)
        assert ci.low <= ci.estimate <= ci.high

    def test_coverage_on_known_distribution(self):
        # ~95% of CIs from Bernoulli(0.6) samples should contain 0.6.
        hits = 0
        trials = 200
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            data = (rng.random(60) < 0.6).astype(float)
            ci = bootstrap_ci(data, rng, n_boot=400)
            hits += ci.contains(0.6)
        assert hits / trials > 0.85

    def test_width_shrinks_with_sample_size(self, rng):
        data_rng = np.random.default_rng(1)
        small = bootstrap_ci(data_rng.random(10), rng)
        large = bootstrap_ci(data_rng.random(1000), rng)
        assert large.width < small.width

    def test_degenerate_data_zero_width(self, rng):
        ci = bootstrap_ci(np.ones(20), rng)
        assert ci.low == ci.high == 1.0

    def test_custom_statistic(self, rng):
        values = np.arange(11, dtype=float)
        ci = bootstrap_ci(values, rng, statistic=np.median)
        assert ci.estimate == 5.0

    def test_str_format(self, rng):
        ci = bootstrap_ci([0.5, 0.5], rng)
        assert "[" in str(ci) and "95%" in str(ci)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            bootstrap_ci([], rng)
        with pytest.raises(ValidationError):
            bootstrap_ci([1.0], rng, level=1.0)
        with pytest.raises(ValidationError):
            bootstrap_ci([1.0], rng, n_boot=5)


class TestMetricCIs:
    TRUTH = {"p1": "q1", "p2": "q2", "p3": "q3"}

    def test_perceptiveness_ci_estimate(self, rng):
        results = {"p1": ["q1"], "p2": ["q9"], "p3": ["q3", "q1"]}
        ci = perceptiveness_ci(results, self.TRUTH, rng)
        assert ci.estimate == pytest.approx(2 / 3)
        assert ci.n_samples == 3

    def test_selectiveness_ci_estimate(self, rng):
        results = {"p1": ["a", "b"], "p2": ["c"], "p3": []}
        ci = selectiveness_ci(results, 10, rng)
        assert ci.estimate == pytest.approx(0.1)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            perceptiveness_ci({}, self.TRUTH, rng)
        with pytest.raises(ValidationError):
            selectiveness_ci({"p1": []}, 0, rng)

    def test_interval_dataclass(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95, 10)
        assert ci.width == pytest.approx(0.2)
        assert ci.contains(0.45)
        assert not ci.contains(0.7)
