"""Local planar projection."""

import numpy as np
import pytest

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.geo.distance import haversine
from repro.geo.projection import LocalProjection, projection_for_databases

SINGAPORE = LocalProjection(lon0=103.85, lat0=1.29)


class TestPointTransforms:
    def test_centre_maps_to_origin(self):
        x, y = SINGAPORE.to_plane(np.array([103.85]), np.array([1.29]))
        assert x[0] == pytest.approx(0.0, abs=1e-9)
        assert y[0] == pytest.approx(0.0, abs=1e-9)

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        lons = 103.85 + rng.uniform(-0.2, 0.2, 100)
        lats = 1.29 + rng.uniform(-0.1, 0.1, 100)
        x, y = SINGAPORE.to_plane(lons, lats)
        back_lon, back_lat = SINGAPORE.to_lonlat(x, y)
        assert np.allclose(back_lon, lons, atol=1e-12)
        assert np.allclose(back_lat, lats, atol=1e-12)

    def test_planar_distance_matches_haversine_city_scale(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            lon1, lon2 = 103.85 + rng.uniform(-0.2, 0.2, 2)
            lat1, lat2 = 1.29 + rng.uniform(-0.1, 0.1, 2)
            x, y = SINGAPORE.to_plane(
                np.array([lon1, lon2]), np.array([lat1, lat2])
            )
            planar = float(np.hypot(x[1] - x[0], y[1] - y[0]))
            true = haversine(lon1, lat1, lon2, lat2)
            assert planar == pytest.approx(true, rel=5e-3)

    def test_axes_orientation(self):
        # East increases x; north increases y.
        x_east, _ = SINGAPORE.to_plane(np.array([103.95]), np.array([1.29]))
        _, y_north = SINGAPORE.to_plane(np.array([103.85]), np.array([1.39]))
        assert x_east[0] > 0
        assert y_north[0] > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            LocalProjection(lon0=200.0, lat0=0.0)
        with pytest.raises(ValidationError):
            LocalProjection(lon0=0.0, lat0=89.5)


class TestCenteredOn:
    def test_centroid(self):
        proj = LocalProjection.centered_on(
            np.array([100.0, 102.0]), np.array([1.0, 3.0])
        )
        assert proj.lon0 == 101.0
        assert proj.lat0 == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            LocalProjection.centered_on(np.array([]), np.array([]))


class TestTrajectoryTransforms:
    @pytest.fixture
    def lonlat_traj(self):
        rng = np.random.default_rng(2)
        n = 30
        ts = np.sort(rng.uniform(0, 1e4, n))
        lons = 103.85 + rng.uniform(-0.1, 0.1, n)
        lats = 1.29 + rng.uniform(-0.05, 0.05, n)
        return Trajectory(ts, lons, lats, "gps")

    def test_project_unproject_round_trip(self, lonlat_traj):
        planar = SINGAPORE.project_trajectory(lonlat_traj)
        back = SINGAPORE.unproject_trajectory(planar)
        assert np.allclose(back.xs, lonlat_traj.xs, atol=1e-10)
        assert np.allclose(back.ys, lonlat_traj.ys, atol=1e-10)
        assert np.array_equal(back.ts, lonlat_traj.ts)

    def test_project_db(self, lonlat_traj):
        db = TrajectoryDatabase([lonlat_traj], name="gps")
        planar = SINGAPORE.project_db(db)
        assert len(planar) == 1
        assert planar.name == "gps"

    def test_projection_for_databases(self, lonlat_traj):
        db = TrajectoryDatabase([lonlat_traj])
        proj = projection_for_databases(db)
        assert proj.lon0 == pytest.approx(float(np.mean(lonlat_traj.xs)))

    def test_projection_for_empty_rejected(self):
        with pytest.raises(ValidationError):
            projection_for_databases(TrajectoryDatabase())
