"""Grid spatial index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.geo.grid import GridIndex


@pytest.fixture
def points() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.uniform(0, 1000, size=(200, 2))


@pytest.fixture
def index(points) -> GridIndex:
    return GridIndex(points, cell_size=100.0)


def brute_nearest(points: np.ndarray, x: float, y: float) -> tuple[int, float]:
    d = np.hypot(points[:, 0] - x, points[:, 1] - y)
    i = int(np.argmin(d))
    return i, float(d[i])


class TestConstruction:
    def test_len(self, index, points):
        assert len(index) == len(points)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            GridIndex(np.zeros((3, 3)), cell_size=1.0)

    def test_bad_cell_size_rejected(self, points):
        with pytest.raises(ValidationError):
            GridIndex(points, cell_size=0.0)

    def test_points_view_readonly(self, index):
        with pytest.raises(ValueError):
            index.points[0, 0] = 99.0


class TestNearest:
    def test_matches_brute_force(self, index, points):
        rng = np.random.default_rng(3)
        for _ in range(50):
            x, y = rng.uniform(-100, 1100, size=2)
            got_i, got_d = index.nearest(x, y)
            want_i, want_d = brute_nearest(points, x, y)
            assert got_d == pytest.approx(want_d)
            assert got_i == want_i

    def test_exact_hit(self, index, points):
        i, d = index.nearest(*points[17])
        assert i == 17
        assert d == 0.0

    def test_far_query(self, index, points):
        got_i, got_d = index.nearest(1e6, 1e6)
        want_i, want_d = brute_nearest(points, 1e6, 1e6)
        assert got_i == want_i

    def test_empty_index_raises(self):
        idx = GridIndex(np.zeros((0, 2)), cell_size=10.0)
        with pytest.raises(ValidationError):
            idx.nearest(0, 0)

    def test_single_point(self):
        idx = GridIndex(np.array([[5.0, 5.0]]), cell_size=1.0)
        assert idx.nearest(100.0, 100.0)[0] == 0

    @given(st.floats(-2000, 2000), st.floats(-2000, 2000))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute(self, x, y):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 500, size=(40, 2))
        idx = GridIndex(pts, cell_size=50.0)
        got_i, got_d = idx.nearest(x, y)
        _, want_d = brute_nearest(pts, x, y)
        assert got_d == pytest.approx(want_d)


class TestWithin:
    def test_radius_query_matches_brute(self, index, points):
        x, y, r = 500.0, 500.0, 150.0
        got = set(index.within(x, y, r))
        want = {
            i
            for i, (px, py) in enumerate(points)
            if np.hypot(px - x, py - y) <= r
        }
        assert got == want

    def test_zero_radius(self, index, points):
        got = index.within(*points[5], 0.0)
        assert 5 in got

    def test_negative_radius_rejected(self, index):
        with pytest.raises(ValidationError):
            index.within(0, 0, -1.0)


class TestNearestMany:
    def test_matches_scalar(self, index, points):
        xs = np.array([10.0, 500.0, 990.0])
        ys = np.array([10.0, 500.0, 990.0])
        got = index.nearest_many(xs, ys)
        for i in range(3):
            assert got[i] == index.nearest(xs[i], ys[i])[0]

    def test_shape_mismatch_rejected(self, index):
        with pytest.raises(ValidationError):
            index.nearest_many(np.zeros(3), np.zeros(4))
