"""Bounding boxes."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.bbox import BoundingBox


@pytest.fixture
def box() -> BoundingBox:
    return BoundingBox(0.0, 0.0, 100.0, 50.0)


class TestConstruction:
    def test_from_size(self):
        b = BoundingBox.from_size(10.0, 20.0)
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, 0, 10, 20)

    def test_degenerate_rejected(self):
        with pytest.raises(ValidationError):
            BoundingBox(0, 0, 0, 10)

    def test_inverted_rejected(self):
        with pytest.raises(ValidationError):
            BoundingBox(10, 0, 0, 10)


class TestGeometry:
    def test_width_height_area(self, box):
        assert box.width == 100.0
        assert box.height == 50.0
        assert box.area == 5000.0

    def test_diameter(self, box):
        assert box.diameter == pytest.approx(np.hypot(100, 50))

    def test_center(self, box):
        assert box.center == (50.0, 25.0)

    def test_expand(self, box):
        grown = box.expand(5.0)
        assert grown.min_x == -5.0 and grown.max_y == 55.0

    def test_expand_collapse_rejected(self, box):
        with pytest.raises(ValidationError):
            box.expand(-60.0)


class TestContainment:
    def test_contains_inside(self, box):
        assert box.contains(50, 25)

    def test_contains_boundary(self, box):
        assert box.contains(0, 0)
        assert box.contains(100, 50)

    def test_contains_outside(self, box):
        assert not box.contains(101, 25)
        assert not box.contains(50, -1)

    def test_contains_many(self, box):
        xs = np.array([50.0, 101.0, 0.0])
        ys = np.array([25.0, 25.0, 0.0])
        assert list(box.contains_many(xs, ys)) == [True, False, True]


class TestClipAndSample:
    def test_clip_inside_unchanged(self, box):
        assert box.clip(30, 20) == (30.0, 20.0)

    def test_clip_outside(self, box):
        assert box.clip(-10, 60) == (0.0, 50.0)

    def test_clip_many(self, box):
        xs, ys = box.clip_many(np.array([-5.0, 120.0]), np.array([25.0, 25.0]))
        assert list(xs) == [0.0, 100.0]

    def test_sample_inside(self, box):
        rng = np.random.default_rng(0)
        pts = box.sample(rng, 200)
        assert pts.shape == (200, 2)
        assert box.contains_many(pts[:, 0], pts[:, 1]).all()

    def test_sample_zero(self, box):
        rng = np.random.default_rng(0)
        assert box.sample(rng, 0).shape == (0, 2)

    def test_sample_negative_rejected(self, box):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            box.sample(rng, -1)
