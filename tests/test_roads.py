"""Road-network mobility."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.units import days_to_seconds, kph_to_mps
from repro.synth.city import CityModel
from repro.synth.roads import (
    build_road_network,
    build_road_taxi_path,
    detour_ratio,
)


@pytest.fixture(scope="module")
def module_city():
    return CityModel.generate(
        np.random.default_rng(5), width_m=15_000, height_m=10_000
    )


@pytest.fixture(scope="module")
def network(module_city):
    return build_road_network(
        module_city, np.random.default_rng(6), spacing_m=1_500.0
    )


class TestBuildNetwork:
    def test_connected(self, network):
        assert nx.is_connected(network.graph)

    def test_nodes_cover_city(self, module_city, network):
        bbox = module_city.bbox
        assert bbox.contains_many(
            network.node_positions[:, 0], network.node_positions[:, 1]
        ).all()

    def test_edge_lengths_match_geometry(self, network):
        for a, b, data in network.graph.edges(data=True):
            ax, ay = network.node_positions[a]
            bx, by = network.node_positions[b]
            assert data["length"] == pytest.approx(
                float(np.hypot(bx - ax, by - ay))
            )

    def test_removal_respects_connectivity(self, module_city):
        rng = np.random.default_rng(7)
        network = build_road_network(
            module_city, rng, spacing_m=1_500.0, removal_fraction=0.3
        )
        assert nx.is_connected(network.graph)

    def test_nearest_node(self, network):
        node = network.nearest_node(0.0, 0.0)
        x, y = network.node_positions[node]
        dists = np.hypot(
            network.node_positions[:, 0], network.node_positions[:, 1]
        )
        assert np.hypot(x, y) == pytest.approx(float(dists.min()))

    def test_validation(self, module_city):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            build_road_network(module_city, rng, spacing_m=0.0)
        with pytest.raises(ValidationError):
            build_road_network(module_city, rng, jitter_fraction=0.7)
        with pytest.raises(ValidationError):
            build_road_network(module_city, rng, removal_fraction=1.0)


class TestShortestPaths:
    def test_path_endpoints(self, network):
        nodes = network.shortest_path_nodes(0, network.n_nodes - 1)
        assert nodes[0] == 0
        assert nodes[-1] == network.n_nodes - 1

    def test_path_length_at_least_straight_line(self, network):
        rng = np.random.default_rng(8)
        for _ in range(10):
            a, b = rng.integers(0, network.n_nodes, 2)
            if a == b:
                continue
            nodes = network.shortest_path_nodes(int(a), int(b))
            road = network.path_length_m(nodes)
            ax, ay = network.node_positions[a]
            bx, by = network.node_positions[b]
            straight = float(np.hypot(bx - ax, by - ay))
            assert road >= straight - 1e-6

    def test_detour_ratio_reasonable(self, network):
        rng = np.random.default_rng(9)
        ratio = detour_ratio(network, rng, n_samples=30)
        assert 1.0 <= ratio < 2.0

    def test_detour_validation(self, network):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            detour_ratio(network, rng, n_samples=0)


class TestRoadTaxiPath:
    def test_covers_duration(self, module_city, network):
        rng = np.random.default_rng(10)
        path = build_road_taxi_path(
            module_city, network, days_to_seconds(1), rng
        )
        assert path.end_time >= days_to_seconds(1)

    def test_respects_speed_bound(self, module_city, network):
        rng = np.random.default_rng(11)
        path = build_road_taxi_path(
            module_city, network, days_to_seconds(1), rng,
            speed_low_kph=25.0, speed_high_kph=70.0,
        )
        assert path.max_speed_mps() <= kph_to_mps(70.0) + 1e-9

    def test_waypoints_are_road_nodes(self, module_city, network):
        rng = np.random.default_rng(12)
        path = build_road_taxi_path(
            module_city, network, days_to_seconds(0.5), rng, dwell_max_s=0.1
        )
        _ts, xs, ys = path.waypoints
        node_set = {tuple(p) for p in np.round(network.node_positions, 6)}
        on_road = sum(
            1 for x, y in zip(np.round(xs, 6), np.round(ys, 6))
            if (x, y) in node_set
        )
        assert on_road / len(xs) > 0.95

    def test_linkable_end_to_end(self, module_city, network):
        """Road-constrained agents still link across two services."""
        from repro.config import FTLConfig
        from repro.core.linker import FTLLinker
        from repro.synth.noise import GaussianNoise
        from repro.synth.observation import ObservationService
        from repro.synth.population import Agent
        from repro.synth.scenario import make_paired_databases

        rng = np.random.default_rng(13)
        agents = [
            Agent(i, build_road_taxi_path(
                module_city, network, days_to_seconds(5), rng
            ))
            for i in range(15)
        ]
        pair = make_paired_databases(
            agents,
            ObservationService("P", 0.8, GaussianNoise(50.0)),
            ObservationService("Q", 0.4, GaussianNoise(50.0)),
            rng,
        )
        linker = FTLLinker(FTLConfig(), phi_r=0.1).fit(
            pair.p_db, pair.q_db, rng
        )
        qids = pair.sample_queries(10, rng)
        hits = sum(
            1
            for pid in qids
            if linker.link(pair.p_db[pid]).contains(pair.truth[pid])
        )
        assert hits >= 7

    def test_validation(self, module_city, network):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            build_road_taxi_path(module_city, network, 0.0, rng)
        with pytest.raises(ValidationError):
            build_road_taxi_path(
                module_city, network, 100.0, rng,
                speed_low_kph=90.0, speed_high_kph=50.0,
            )
