"""CSV / JSONL / model persistence."""

import numpy as np
import pytest

from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.errors import DataFormatError, ValidationError
from repro.io.csv_io import read_trajectories_csv, write_trajectories_csv
from repro.io.jsonl_io import (
    load_model_json,
    read_trajectories_jsonl,
    save_model_json,
    write_trajectories_jsonl,
)


@pytest.fixture
def db() -> TrajectoryDatabase:
    rng = np.random.default_rng(0)
    trajs = []
    for i in range(4):
        n = 10 + i
        ts = np.sort(rng.uniform(0, 1e5, n))
        trajs.append(
            Trajectory(ts, rng.uniform(0, 1e4, n), rng.uniform(0, 1e4, n), f"t{i}")
        )
    return TrajectoryDatabase(trajs, name="demo")


def assert_dbs_equal(a: TrajectoryDatabase, b: TrajectoryDatabase) -> None:
    assert sorted(map(str, a.ids())) == sorted(map(str, b.ids()))
    for traj in a:
        other = b[str(traj.traj_id)]
        assert np.allclose(traj.ts, other.ts)
        assert np.allclose(traj.xs, other.xs)
        assert np.allclose(traj.ys, other.ys)


class TestCsv:
    def test_round_trip(self, db, tmp_path):
        path = tmp_path / "db.csv"
        rows = write_trajectories_csv(db, path)
        assert rows == db.total_records()
        loaded = read_trajectories_csv(path, name="demo")
        assert_dbs_equal(db, loaded)
        assert loaded.name == "demo"

    def test_exact_float_round_trip(self, db, tmp_path):
        path = tmp_path / "db.csv"
        write_trajectories_csv(db, path)
        loaded = read_trajectories_csv(path)
        original = db["t0"]
        assert np.array_equal(loaded["t0"].xs, original.xs)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,time\n1,2\n")
        with pytest.raises(DataFormatError, match="missing required columns"):
            read_trajectories_csv(path)

    def test_bad_record_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("traj_id,t,x,y\na,1.0,2.0,3.0\na,oops,2.0,3.0\n")
        with pytest.raises(DataFormatError, match=":3"):
            read_trajectories_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataFormatError):
            read_trajectories_csv(path)

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("traj_id,t,x,y,speed\na,1.0,2.0,3.0,99\n")
        loaded = read_trajectories_csv(path)
        assert len(loaded["a"]) == 1

    def test_unsorted_rows_sorted_on_read(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text("traj_id,t,x,y\na,5.0,1.0,0.0\na,1.0,2.0,0.0\n")
        loaded = read_trajectories_csv(path)
        assert list(loaded["a"].ts) == [1.0, 5.0]


class TestJsonl:
    def test_round_trip(self, db, tmp_path):
        path = tmp_path / "db.jsonl"
        lines = write_trajectories_jsonl(db, path)
        assert lines == len(db)
        loaded = read_trajectories_jsonl(path)
        assert_dbs_equal(db, loaded)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "db.jsonl"
        path.write_text(
            '{"traj_id": "a", "t": [1.0], "x": [2.0], "y": [3.0]}\n\n'
        )
        loaded = read_trajectories_jsonl(path)
        assert len(loaded) == 1

    def test_bad_json_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(DataFormatError, match=":1"):
            read_trajectories_jsonl(path)

    def test_missing_key_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"traj_id": "a", "t": [1.0]}\n')
        with pytest.raises(DataFormatError):
            read_trajectories_jsonl(path)


class TestModelPersistence:
    def test_round_trip(self, fitted_models, tmp_path):
        mr, ma = fitted_models
        for model, name in ((mr, "mr.json"), (ma, "ma.json")):
            path = tmp_path / name
            save_model_json(model, path)
            loaded = load_model_json(path)
            assert loaded.kind == model.kind
            buckets = np.arange(model.n_buckets)
            assert np.allclose(
                loaded.probs_for(buckets), model.probs_for(buckets)
            )
            assert loaded.config == model.config

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(DataFormatError):
            load_model_json(path)


class TestFormatRegistry:
    def test_detect_by_suffix(self, tmp_path):
        from repro.io.registry import detect_format

        assert detect_format("x.csv") == "csv"
        assert detect_format("x.jsonl") == "jsonl"
        assert detect_format("x.ndjson") == "jsonl"
        assert detect_format("x.sqlite") == "sqlite"
        assert detect_format("x.db") == "sqlite"
        with pytest.raises(ValidationError, match="cannot infer"):
            detect_format(tmp_path / "mystery.bin")

    def test_round_trip_every_file_format(self, db, tmp_path):
        from repro.io.registry import load_database, save_database

        for fname in ("db.csv", "db.jsonl", "db.sqlite"):
            path = tmp_path / fname
            written = save_database(db, path)
            assert written == db.total_records()
            assert_dbs_equal(db, load_database(path))

    def test_unknown_format_rejected(self, db, tmp_path):
        from repro.io.registry import save_database

        with pytest.raises(ValidationError, match="unknown format"):
            save_database(db, tmp_path / "x", fmt="parquet")

    def test_sqlite_multi_db_requires_name(self, db, tmp_path):
        from repro.io.registry import load_database
        from repro.io.sqlite_store import SQLiteTrajectoryStore

        path = tmp_path / "multi.sqlite"
        with SQLiteTrajectoryStore(path) as store:
            store.save(db, "first")
            store.save(db, "second")
        with pytest.raises(ValidationError, match="pass name="):
            load_database(path)
        loaded = load_database(path, name="second")
        assert_dbs_equal(db, loaded)

    def test_format_names_cover_builtins(self):
        from repro.io.registry import format_names

        assert {"csv", "jsonl", "sqlite", "store"} <= set(format_names())


class TestSqliteRemovals:
    def test_iter_trajectories_removed(self, db, tmp_path):
        from repro.io.sqlite_store import SQLiteTrajectoryStore

        path = tmp_path / "d.sqlite"
        with SQLiteTrajectoryStore(path) as store:
            store.save(db, "demo")
            # The deprecated never-streaming shim is gone; load() is
            # the (only) way to materialise a stored database.
            assert not hasattr(store, "iter_trajectories")
            assert len(store.load("demo")) == len(db)
