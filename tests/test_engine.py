"""The batch linking engine: LinkOptions, ProfileCache, LinkEngine."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FTLConfig
from repro.core.alignment import mutual_segment_profile
from repro.core.engine import (
    DEFAULT_LINK_OPTIONS,
    LinkEngine,
    LinkOptions,
    ProfileCache,
)
from repro.core.linker import FTLLinker
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError

ALL_OPTIONS = [
    LinkOptions(method="naive-bayes", phi_r=0.1),
    LinkOptions(method="alpha-filter", alpha1=0.01, alpha2=0.1),
    LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0),
]


@pytest.fixture(scope="module")
def query_set(small_pair):
    rng = np.random.default_rng(3)
    ids = small_pair.sample_queries(8, rng)
    return [small_pair.p_db[pid] for pid in ids]


def make_engine(fitted_models, options=DEFAULT_LINK_OPTIONS):
    mr, ma = fitted_models
    return LinkEngine(mr, ma, options=options)


class TestLinkOptions:
    def test_defaults_match_seed(self):
        opts = LinkOptions()
        assert opts.method == "naive-bayes"
        assert opts.alpha1 == 0.05
        assert opts.alpha2 == 0.05
        assert opts.phi_r == 0.01
        assert opts.top_k is None
        assert opts.prefilter is None

    def test_phi_a_complement(self):
        assert LinkOptions(phi_r=0.2).phi_a == pytest.approx(0.8)

    def test_with_updates(self):
        opts = LinkOptions().with_updates(method="alpha-filter", alpha1=0.2)
        assert opts.method == "alpha-filter"
        assert opts.alpha1 == 0.2
        assert opts.alpha2 == 0.05

    @pytest.mark.parametrize(
        "bad",
        [
            {"method": "magic"},
            {"alpha1": -0.1},
            {"alpha2": 1.5},
            {"phi_r": 0.0},
            {"phi_r": 1.0},
            {"top_k": 0},
            {"prefilter": object()},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValidationError):
            LinkOptions(**bad)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LinkOptions().method = "alpha-filter"


class TestProfileCache:
    def test_miss_then_hit(self, small_pair, config):
        cache = ProfileCache(maxsize=16)
        query = next(iter(small_pair.p_db))
        candidate = next(iter(small_pair.q_db))
        first = cache.get(query, candidate, config)
        second = cache.get(query, candidate, config)
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.n_computed == 1

    def test_config_is_part_of_key(self, small_pair):
        cache = ProfileCache()
        query = next(iter(small_pair.p_db))
        candidate = next(iter(small_pair.q_db))
        cache.get(query, candidate, FTLConfig())
        cache.get(query, candidate, FTLConfig(time_unit_s=30.0))
        assert cache.stats.misses == 2

    def test_eviction(self, small_pair, config):
        cache = ProfileCache(maxsize=2)
        query = next(iter(small_pair.p_db))
        candidates = list(small_pair.q_db)[:3]
        for candidate in candidates:
            cache.get(query, candidate, config)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The least recently used entry (candidate 0) was dropped.
        cache.get(query, candidates[0], config)
        assert cache.stats.misses == 4

    def test_clear(self, small_pair, config):
        cache = ProfileCache()
        query = next(iter(small_pair.p_db))
        candidate = next(iter(small_pair.q_db))
        cache.get(query, candidate, config)
        cache.clear()
        assert len(cache) == 0
        cache.get(query, candidate, config)
        assert cache.stats.misses == 2

    def test_bad_maxsize(self):
        with pytest.raises(ValidationError):
            ProfileCache(maxsize=0)

    @given(
        st.lists(st.floats(0.0, 7200.0), min_size=2, max_size=12),
        st.lists(st.floats(0.0, 7200.0), min_size=2, max_size=12),
        st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_cached_profile_equals_fresh(self, ts_p, ts_q, seed):
        """Property: a cache hit returns the same observation content."""
        rng = np.random.default_rng(seed)
        config = FTLConfig()
        p = Trajectory(
            np.sort(np.asarray(ts_p)),
            rng.uniform(0, 5000, len(ts_p)),
            rng.uniform(0, 5000, len(ts_p)),
            "p",
        )
        q = Trajectory(
            np.sort(np.asarray(ts_q)),
            rng.uniform(0, 5000, len(ts_q)),
            rng.uniform(0, 5000, len(ts_q)),
            "q",
        )
        cache = ProfileCache()
        cache.get(p, q, config)
        cached = cache.get(p, q, config)
        assert cache.stats.hits == 1
        # Content equality/hashing is defined through the profile token.
        fresh = mutual_segment_profile(p, q, config)
        assert cached == fresh
        assert hash(cached) == hash(fresh)


class TestBatchEquivalence:
    """link_batch == a loop of sequential link() calls, bit for bit."""

    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=lambda o: f"{o.method}")
    def test_batch_matches_sequential(
        self, small_pair, fitted_models, query_set, options
    ):
        mr, ma = fitted_models
        pool = list(small_pair.q_db)
        batch = make_engine(fitted_models, options).link_batch(query_set, pool)
        sequential = [
            make_engine(fitted_models, options).link(q, pool) for q in query_set
        ]
        assert len(batch) == len(sequential)
        for got, want in zip(batch, sequential):
            assert got == want  # dataclass equality: ids, scores, p-values

    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=lambda o: f"{o.method}")
    def test_warm_cache_never_changes_results(
        self, small_pair, fitted_models, query_set, options
    ):
        engine = make_engine(fitted_models, options)
        pool = list(small_pair.q_db)
        cold = engine.link_batch(query_set, pool)
        assert engine.cache.stats.hits == 0
        warm = engine.link_batch(query_set, pool)
        assert engine.cache.stats.hits == engine.cache.stats.misses
        assert warm == cold

    def test_each_profile_computed_exactly_once(
        self, small_pair, fitted_models, query_set
    ):
        engine = make_engine(fitted_models)
        engine.link_batch(query_set, small_pair.q_db)
        stats = engine.cache.stats
        assert stats.n_computed == len(query_set) * len(small_pair.q_db)
        assert stats.hits == 0

    def test_finds_true_matches(self, small_pair, fitted_models, query_set):
        engine = make_engine(fitted_models, LinkOptions(phi_r=0.1))
        results = engine.link_batch(query_set, small_pair.q_db)
        hits = sum(
            1 for r in results if r.contains(small_pair.truth[r.query_id])
        )
        assert hits >= len(query_set) - 2

    def test_empty_pool(self, fitted_models, query_set):
        result = make_engine(fitted_models).link(query_set[0], [])
        assert len(result) == 0
        assert result.query_id == query_set[0].traj_id

    def test_rejects_non_options(self, fitted_models, query_set):
        with pytest.raises(ValidationError):
            make_engine(fitted_models).link_batch(
                query_set, [], options={"method": "naive-bayes"}
            )


class TestEngineOptions:
    def test_top_k_truncates(self, small_pair, fitted_models, query_set):
        exhaustive = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)
        engine = make_engine(fitted_models, exhaustive)
        full = engine.link(query_set[0], small_pair.q_db)
        top2 = engine.link(
            query_set[0], small_pair.q_db, exhaustive.with_updates(top_k=2)
        )
        assert len(full) == len(small_pair.q_db)
        assert len(top2) == 2
        assert top2.candidates == full.candidates[:2]

    def test_prefilter_applied(self, small_pair, fitted_models, query_set):
        class KeepNothing:
            def keep(self, query, candidate):
                return False

        engine = make_engine(
            fitted_models, LinkOptions(prefilter=KeepNothing())
        )
        result = engine.link(query_set[0], small_pair.q_db)
        assert len(result) == 0
        assert engine.cache.stats.n_computed == 0


class TestLinkerFacade:
    def test_link_batch_matches_link(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        linker = FTLLinker(
            mr.config, LinkOptions(phi_r=0.1)
        ).with_models(mr, ma, small_pair.q_db)
        batch = linker.link_batch(query_set)
        singles = [linker.link(q) for q in query_set]
        assert batch == singles

    def test_options_property(self, fitted_models):
        opts = LinkOptions(method="alpha-filter", alpha1=0.02)
        linker = FTLLinker(FTLConfig(), opts)
        assert linker.options is opts

    def test_kwarg_shorthand_builds_options(self):
        linker = FTLLinker(FTLConfig(), alpha1=0.01, alpha2=0.2, phi_r=0.3)
        assert linker.options == LinkOptions(
            alpha1=0.01, alpha2=0.2, phi_r=0.3
        )

    def test_per_call_options_override(
        self, small_pair, fitted_models, query_set
    ):
        mr, ma = fitted_models
        linker = FTLLinker(mr.config).with_models(mr, ma, small_pair.q_db)
        ranked = linker.link(
            query_set[0],
            options=LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0),
        )
        assert len(ranked) == len(small_pair.q_db)
        assert ranked.method == "alpha-filter"

    def test_profile_cache_exposed(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        linker = FTLLinker(mr.config).with_models(mr, ma, small_pair.q_db)
        linker.link(query_set[0])
        assert linker.profile_cache.stats.n_computed == len(small_pair.q_db)


class TestResultSerialisation:
    @pytest.fixture(scope="class")
    def result(self, small_pair, fitted_models):
        mr, ma = fitted_models
        engine = LinkEngine(
            mr, ma, LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)
        )
        query = next(iter(small_pair.p_db))
        return engine.link(query, small_pair.q_db)

    def test_to_dict_round_trip(self, result):
        payload = result.to_dict()
        assert payload["query_id"] == result.query_id
        assert payload["method"] == result.method
        assert len(payload["candidates"]) == len(result)
        first = payload["candidates"][0]
        assert first["candidate_id"] == result.candidates[0].candidate_id
        assert first["score"] == result.candidates[0].score
        assert set(first) == {
            "candidate_id", "score", "p_rejection", "p_acceptance",
            "n_mutual", "n_incompatible",
        }

    def test_to_dict_is_json_serialisable(self, result):
        parsed = json.loads(json.dumps(result.to_dict(), default=str))
        assert len(parsed["candidates"]) == len(result)

    def test_top_helper(self, result):
        assert result.top(3) == result.candidates[:3]
        assert result.top(10_000) == result.candidates
        with pytest.raises(ValidationError):
            result.top(-1)


class TestBenchSmoke:
    def test_engine_bench_smoke(self, tmp_path):
        """Tiny-size run of the engine benchmark, emitting BENCH_engine.json."""
        from benchmarks.bench_engine_batch import run_engine_benchmark

        out = tmp_path / "BENCH_engine.json"
        report = run_engine_benchmark(
            n_candidates=8, n_queries=3, seed=5, out_path=out
        )
        written = json.loads(out.read_text())
        assert written["n_candidates"] == report["n_candidates"] == 8
        for workload in ("ranking", "naive-bayes"):
            row = written["workloads"][workload]
            assert row["engine_batch_s"] > 0.0
            assert row["profiles_computed"] == 3 * 8


class TestLinkRequests:
    def test_bit_identical_to_link_batch(self, fitted_models, small_pair,
                                         query_set):
        engine = make_engine(fitted_models)
        pool = list(small_pair.q_db)
        from repro.core.engine import LinkRequest

        requests = [LinkRequest(query=q) for q in query_set]
        assert engine.link_requests(requests, default_pool=pool) == \
            engine.link_batch(query_set, pool)

    def test_heterogeneous_per_request_options(self, fitted_models,
                                               small_pair, query_set):
        engine = make_engine(fitted_models)
        pool = list(small_pair.q_db)
        from repro.core.engine import LinkRequest

        requests = [
            LinkRequest(query=query, options=options)
            for query, options in zip(query_set, ALL_OPTIONS)
        ]
        got = engine.link_requests(requests, default_pool=pool)
        expected = [
            engine.link(query, pool, options)
            for query, options in zip(query_set, ALL_OPTIONS)
        ]
        assert got == expected

    def test_per_request_candidates_override_pool(self, fitted_models,
                                                  small_pair, query_set):
        engine = make_engine(fitted_models)
        pool = list(small_pair.q_db)
        subset = pool[:3]
        from repro.core.engine import LinkRequest

        requests = [
            LinkRequest(query=query_set[0]),
            LinkRequest(query=query_set[1], candidates=subset),
        ]
        got = engine.link_requests(requests, default_pool=pool)
        assert got[0] == engine.link(query_set[0], pool)
        assert got[1] == engine.link(query_set[1], subset)
        assert all(c.candidate_id in {t.traj_id for t in subset}
                   for c in got[1].candidates)

    def test_no_candidates_and_no_pool_rejected(self, fitted_models,
                                                query_set):
        engine = make_engine(fitted_models)
        from repro.core.engine import LinkRequest

        with pytest.raises(ValidationError, match="no default_pool"):
            engine.link_requests([LinkRequest(query=query_set[0])])

    def test_request_validation(self, fitted_models, query_set):
        engine = make_engine(fitted_models)
        from repro.core.engine import LinkRequest

        with pytest.raises(ValidationError):
            LinkRequest(query="not a trajectory")
        with pytest.raises(ValidationError):
            LinkRequest(query=query_set[0], options="fast")
        with pytest.raises(ValidationError):
            engine.link_requests(["not a request"], default_pool=[])

    def test_candidates_coerced_to_tuple(self, small_pair, query_set):
        from repro.core.engine import LinkRequest

        pool = list(small_pair.q_db)[:2]
        request = LinkRequest(query=query_set[0], candidates=pool)
        assert isinstance(request.candidates, tuple)
        assert len(request.candidates) == 2
