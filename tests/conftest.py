"""Shared fixtures: deterministic RNGs, a small scenario and fitted models.

The expensive fixtures (scenario + models) are session-scoped; tests
must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.models import CompatibilityModel
from repro.geo.units import days_to_seconds
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.population import generate_population
from repro.synth.scenario import ScenarioPair, make_paired_databases


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def config() -> FTLConfig:
    return FTLConfig()


@pytest.fixture(scope="session")
def session_rng() -> np.random.Generator:
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def city(session_rng) -> CityModel:
    return CityModel.generate(session_rng)


@pytest.fixture(scope="session")
def small_pair(city, session_rng) -> ScenarioPair:
    """A small paired-service scenario: 30 taxi agents over 5 days."""
    agents = generate_population(
        city, 30, days_to_seconds(5), session_rng, mobility="taxi"
    )
    service_p = ObservationService("P", rate_per_hour=0.8, noise=GaussianNoise(50.0))
    service_q = ObservationService("Q", rate_per_hour=0.4, noise=GaussianNoise(50.0))
    return make_paired_databases(agents, service_p, service_q, session_rng)


@pytest.fixture(scope="session")
def fitted_models(small_pair, session_rng):
    """(rejection, acceptance) models fitted on the small scenario."""
    config = FTLConfig()
    mr = CompatibilityModel.fit_rejection(
        [small_pair.p_db, small_pair.q_db], config
    )
    ma = CompatibilityModel.fit_acceptance(
        [small_pair.p_db, small_pair.q_db], config, session_rng
    )
    return mr, ma
