"""Perceptiveness / selectiveness / ranking metrics (paper Defs. 1-2)."""

import pytest

from repro.core.metrics import (
    hits_within_topk,
    perceptiveness,
    precision_at_k,
    recall_curve,
    selectiveness,
)
from repro.errors import ValidationError

TRUTH = {"p1": "q1", "p2": "q2", "p3": "q3", "p4": "q4"}


class TestPerceptiveness:
    def test_all_hit(self):
        results = {"p1": ["q1"], "p2": ["q9", "q2"]}
        assert perceptiveness(results, TRUTH) == 1.0

    def test_partial(self):
        results = {"p1": ["q1"], "p2": ["q9"], "p3": [], "p4": ["q4", "q1"]}
        assert perceptiveness(results, TRUTH) == 0.5

    def test_none_hit(self):
        assert perceptiveness({"p1": ["q9"]}, TRUTH) == 0.0

    def test_empty_results_rejected(self):
        with pytest.raises(ValidationError):
            perceptiveness({}, TRUTH)

    def test_missing_truth_rejected(self):
        with pytest.raises(ValidationError):
            perceptiveness({"unknown": ["q1"]}, TRUTH)


class TestSelectiveness:
    def test_basic(self):
        results = {"p1": ["a", "b"], "p2": ["c"]}
        # (2 + 1) / (2 queries * 10 candidates)
        assert selectiveness(results, 10) == pytest.approx(0.15)

    def test_empty_sets(self):
        assert selectiveness({"p1": [], "p2": []}, 10) == 0.0

    def test_returning_everything_is_one(self):
        results = {"p1": list(range(10))}
        assert selectiveness(results, 10) == 1.0

    def test_bad_database_size(self):
        with pytest.raises(ValidationError):
            selectiveness({"p1": []}, 0)

    def test_empty_results_rejected(self):
        with pytest.raises(ValidationError):
            selectiveness({}, 10)


class TestPrecisionAtK:
    def test_rank_order_matters(self):
        results = {"p1": ["q9", "q1"], "p2": ["q2", "q8"]}
        assert precision_at_k(results, TRUTH, 1) == 0.5
        assert precision_at_k(results, TRUTH, 2) == 1.0

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            precision_at_k({"p1": ["q1"]}, TRUTH, 0)

    def test_k_beyond_list(self):
        assert precision_at_k({"p1": ["q9"]}, TRUTH, 100) == 0.0


class TestHitsWithinTopk:
    def test_counts_queries_not_pairs(self):
        scored = [
            ("p1", "q1", 0.9),   # true, rank 1
            ("p1", "q7", 0.8),   # false
            ("p2", "q2", 0.7),   # true, rank 3
            ("p3", "q9", 0.6),   # false
            ("p3", "q3", 0.5),   # true, rank 5
        ]
        assert hits_within_topk(scored, TRUTH, [1, 3, 5]) == [1, 2, 3]

    def test_zero_k(self):
        assert hits_within_topk([("p1", "q1", 1.0)], TRUTH, [0]) == [0]

    def test_k_beyond_pool(self):
        scored = [("p1", "q1", 1.0)]
        assert hits_within_topk(scored, TRUTH, [10]) == [1]

    def test_duplicate_query_counted_once(self):
        scored = [("p1", "q1", 0.9), ("p1", "q1", 0.8)]
        assert hits_within_topk(scored, TRUTH, [2]) == [1]

    def test_non_decreasing_ks_required(self):
        with pytest.raises(ValidationError):
            hits_within_topk([("p1", "q1", 1.0)], TRUTH, [5, 1])

    def test_negative_k_rejected(self):
        with pytest.raises(ValidationError):
            hits_within_topk([], TRUTH, [-1])

    def test_sorted_by_score_descending(self):
        # Lower-scored true match only appears at larger k.
        scored = [("p1", "q1", 0.1), ("p2", "q9", 0.9)]
        assert hits_within_topk(scored, TRUTH, [1, 2]) == [0, 1]


class TestRecallCurve:
    def test_monotone(self):
        results = {
            "p1": ["q9", "q1", "q8"],
            "p2": ["q2"],
            "p3": ["q7", "q6", "q3"],
        }
        curve = recall_curve(results, TRUTH, [1, 2, 3])
        assert curve == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]
        assert all(a <= b for a, b in zip(curve, curve[1:]))
