"""Unit conversions."""

import math

import pytest

from repro.errors import ValidationError
from repro.geo import units


class TestSpeedConversions:
    def test_kph_to_mps_known_value(self):
        assert units.kph_to_mps(36.0) == pytest.approx(10.0)

    def test_mps_to_kph_known_value(self):
        assert units.mps_to_kph(10.0) == pytest.approx(36.0)

    def test_round_trip(self):
        assert units.mps_to_kph(units.kph_to_mps(123.4)) == pytest.approx(123.4)

    def test_vmax_120kph(self):
        # The paper's taxi Vmax: 120 kph = 33.33 m/s.
        assert units.kph_to_mps(120.0) == pytest.approx(33.3333, abs=1e-3)

    def test_zero(self):
        assert units.kph_to_mps(0.0) == 0.0

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("-inf")])
    def test_rejects_bad_input(self, bad):
        with pytest.raises(ValidationError):
            units.kph_to_mps(bad)


class TestDistanceConversions:
    def test_km_to_m(self):
        assert units.km_to_m(1.5) == 1500.0

    def test_m_to_km(self):
        assert units.m_to_km(2500.0) == 2.5

    def test_round_trip(self):
        assert units.m_to_km(units.km_to_m(7.7)) == pytest.approx(7.7)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            units.km_to_m(-3.0)


class TestTimeConversions:
    def test_minutes(self):
        assert units.minutes_to_seconds(2.0) == 120.0

    def test_hours(self):
        assert units.hours_to_seconds(1.5) == 5400.0

    def test_days(self):
        assert units.days_to_seconds(2.0) == 172800.0

    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(7200.0) == 2.0

    def test_seconds_to_days(self):
        assert units.seconds_to_days(86400.0) == 1.0

    def test_constants_consistent(self):
        assert units.SECONDS_PER_DAY == 24 * units.SECONDS_PER_HOUR
        assert units.SECONDS_PER_HOUR == 60 * units.SECONDS_PER_MINUTE

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            units.hours_to_seconds(math.nan)
