"""Kernel backend selection and cross-backend bit-identity.

The contract under test (see ``docs/performance.md``): every kernel
backend — the per-pair ``python`` reference, the batched ``numpy``
kernels, and ``numba`` where importable — produces bit-identical
mutual-segment profiles, Poisson-Binomial pmfs, and end-to-end
rankings (sole documented exception: the numba fused haversine may
differ by a few ulp in the *distance*, never in the profile layout).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FTLConfig
from repro.core.alignment import (
    FlatPool,
    batch_mutual_segment_profiles,
    mutual_segment_profile,
)
from repro.core.engine import LinkEngine, LinkOptions
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.kernels import (
    KERNEL_BACKEND_ENV,
    KERNEL_BACKENDS,
    numba_available,
    resolve_kernel_backend,
)
from repro.stats.poisson_binomial import pb_pmf_batch

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not importable in this environment"
)


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_none_and_auto_resolve_concrete(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert resolve_kernel_backend(None) == expected
        assert resolve_kernel_backend("auto") == expected

    @pytest.mark.parametrize("name", ["python", "numpy"])
    def test_explicit_backends_pass_through(self, name):
        assert resolve_kernel_backend(name) == name

    def test_numba_request_degrades_gracefully(self):
        resolved = resolve_kernel_backend("numba")
        assert resolved == ("numba" if numba_available() else "numpy")

    def test_env_override_applies_to_auto(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "python")
        assert resolve_kernel_backend("auto") == "python"
        assert resolve_kernel_backend(None) == "python"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "python")
        assert resolve_kernel_backend("numpy") == "numpy"

    def test_unknown_name_raises(self, monkeypatch):
        with pytest.raises(ValidationError):
            resolve_kernel_backend("fortran")
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "fortran")
        with pytest.raises(ValidationError):
            resolve_kernel_backend("auto")

    def test_config_and_options_validate_backend(self):
        with pytest.raises(ValidationError):
            FTLConfig(kernel_backend="fortran")
        with pytest.raises(ValidationError):
            LinkOptions(kernel_backend="fortran")
        for name in KERNEL_BACKENDS:
            FTLConfig(kernel_backend=name)
            LinkOptions(kernel_backend=name)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def trajectory_strategy(max_len=20, tie_grid=False, degrees=False):
    """Random trajectories; ``tie_grid`` forces heavy timestamp ties."""

    @st.composite
    def build(draw):
        n = draw(st.integers(0, max_len))
        if tie_grid:
            ts = sorted(
                draw(
                    st.lists(
                        st.integers(0, 40).map(lambda k: k * 30.0),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
        else:
            ts = sorted(
                draw(
                    st.lists(
                        st.floats(0, 2e4, allow_nan=False),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
        rng = np.random.default_rng(draw(st.integers(0, 2**31)))
        if degrees:
            xs = rng.uniform(-0.5, 0.5, n) + 11.5
            ys = rng.uniform(-0.5, 0.5, n) + 48.0
        else:
            xs = rng.uniform(0, 3e4, n)
            ys = rng.uniform(0, 3e4, n)
        return Trajectory(ts, xs, ys, traj_id=f"t{draw(st.integers(0, 10**9))}")

    return build()


def pool_strategy(max_pool=8, **kwargs):
    return st.lists(trajectory_strategy(**kwargs), min_size=0, max_size=max_pool)


# ----------------------------------------------------------------------
# Profile kernel bit-identity
# ----------------------------------------------------------------------
class TestProfileKernels:
    @settings(max_examples=30, deadline=None)
    @given(q=trajectory_strategy(), pool=pool_strategy())
    def test_numpy_matches_python_euclidean(self, q, pool):
        config = FTLConfig()
        ref = batch_mutual_segment_profiles(q, pool, config, backend="python")
        got = batch_mutual_segment_profiles(q, pool, config, backend="numpy")
        assert [p.token for p in ref] == [p.token for p in got]

    @settings(max_examples=20, deadline=None)
    @given(
        q=trajectory_strategy(tie_grid=True),
        pool=pool_strategy(tie_grid=True),
    )
    def test_numpy_matches_python_with_timestamp_ties(self, q, pool):
        config = FTLConfig()
        ref = batch_mutual_segment_profiles(q, pool, config, backend="python")
        flat = FlatPool(pool)
        got = batch_mutual_segment_profiles(
            q, pool, config, backend="numpy", flat=flat
        )
        assert [p.token for p in ref] == [p.token for p in got]

    @settings(max_examples=15, deadline=None)
    @given(
        q=trajectory_strategy(degrees=True),
        pool=pool_strategy(degrees=True),
    )
    def test_numpy_matches_python_haversine(self, q, pool):
        config = FTLConfig(metric="haversine")
        ref = batch_mutual_segment_profiles(q, pool, config, backend="python")
        got = batch_mutual_segment_profiles(q, pool, config, backend="numpy")
        assert [p.token for p in ref] == [p.token for p in got]

    @settings(max_examples=20, deadline=None)
    @given(q=trajectory_strategy(), pool=pool_strategy())
    def test_flat_pool_cache_is_transparent(self, q, pool):
        config = FTLConfig()
        flat = FlatPool(pool)
        cached = batch_mutual_segment_profiles(
            q, pool, config, backend="numpy", flat=flat
        )
        # Reuse: the merge cache is built once and must not go stale.
        again = batch_mutual_segment_profiles(
            q, pool, config, backend="numpy", flat=flat
        )
        plain = batch_mutual_segment_profiles(q, pool, config, backend="numpy")
        assert [p.token for p in cached] == [p.token for p in plain]
        assert [p.token for p in again] == [p.token for p in plain]

    def test_exact_speed_test_ties(self):
        """dist == vmax*dt exactly (3-4-5) must match the reference."""
        config = FTLConfig(vmax_kph=3.6)  # vmax_mps == 1.0 exactly
        assert config.vmax_mps == 1.0
        q = Trajectory(
            np.array([0.0, 10.0]),
            np.array([0.0, 0.0]),
            np.array([0.0, 0.0]),
            traj_id="q",
        )
        pool = [
            # dist 5 == vmax*dt 5: compatible on the tie, both segments.
            Trajectory(np.array([5.0]), np.array([3.0]), np.array([4.0])),
            # dt == 0, dist == 0: the degenerate tie.
            Trajectory(np.array([0.0]), np.array([0.0]), np.array([0.0])),
            # dt == 0, dist > 0: incompatible against the t=0 record.
            Trajectory(np.array([0.0]), np.array([1.0]), np.array([0.0])),
            # Subnormal-scale coordinates (squared distance underflows).
            Trajectory(np.array([1e-8]), np.array([0.6e-8]), np.array([0.8e-8])),
        ]
        ref = batch_mutual_segment_profiles(q, pool, config, backend="python")
        got = batch_mutual_segment_profiles(q, pool, config, backend="numpy")
        assert [p.token for p in ref] == [p.token for p in got]
        assert got[2].incompatible.tolist() == [True, False]

    def test_single_pair_dispatch(self):
        rng = np.random.default_rng(5)
        config = FTLConfig()
        p = Trajectory(np.sort(rng.uniform(0, 1e3, 12)),
                       rng.uniform(0, 1e4, 12), rng.uniform(0, 1e4, 12))
        q = Trajectory(np.sort(rng.uniform(0, 1e3, 9)),
                       rng.uniform(0, 1e4, 9), rng.uniform(0, 1e4, 9))
        ref = mutual_segment_profile(p, q, config, backend="python")
        assert mutual_segment_profile(p, q, config, backend="numpy") == ref

    @requires_numba
    @settings(max_examples=15, deadline=None)
    @given(q=trajectory_strategy(), pool=pool_strategy())
    def test_numba_matches_python_euclidean(self, q, pool):
        config = FTLConfig()
        ref = batch_mutual_segment_profiles(q, pool, config, backend="python")
        got = batch_mutual_segment_profiles(q, pool, config, backend="numba")
        assert [p.token for p in ref] == [p.token for p in got]

    @requires_numba
    @settings(max_examples=10, deadline=None)
    @given(
        q=trajectory_strategy(degrees=True),
        pool=pool_strategy(degrees=True),
    )
    def test_numba_haversine_within_ulp_tolerance(self, q, pool):
        """Fused haversine: same layout/buckets; flags equal away from ties."""
        config = FTLConfig(metric="haversine")
        ref = batch_mutual_segment_profiles(q, pool, config, backend="python")
        got = batch_mutual_segment_profiles(q, pool, config, backend="numba")
        for a, b in zip(ref, got):
            assert np.array_equal(a.buckets, b.buckets)
            assert a.incompatible.shape == b.incompatible.shape


# ----------------------------------------------------------------------
# Poisson-Binomial DP bit-identity
# ----------------------------------------------------------------------
def probs_list_strategy():
    prob = st.one_of(
        st.just(0.0),
        st.just(1.0),
        st.floats(1e-9, 1.0 - 1e-9, allow_nan=False),
    )
    return st.lists(
        st.lists(prob, min_size=0, max_size=30).map(np.asarray),
        min_size=0,
        max_size=10,
    )


class TestPoissonBinomialKernels:
    @settings(max_examples=30, deadline=None)
    @given(probs_list=probs_list_strategy())
    def test_numpy_matches_python(self, probs_list):
        ref = pb_pmf_batch(probs_list, kernel="python")
        got = pb_pmf_batch(probs_list, kernel="numpy")
        assert len(ref) == len(got)
        for a, b in zip(ref, got):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    @requires_numba
    @settings(max_examples=15, deadline=None)
    @given(probs_list=probs_list_strategy())
    def test_numba_matches_python(self, probs_list):
        ref = pb_pmf_batch(probs_list, kernel="python")
        got = pb_pmf_batch(probs_list, kernel="numba")
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# End-to-end: backends are interchangeable inside the engine
# ----------------------------------------------------------------------
class TestEngineBackendIdentity:
    @pytest.mark.parametrize(
        "options",
        [
            LinkOptions(method="naive-bayes", phi_r=0.1),
            LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0),
        ],
        ids=["naive-bayes", "ranking"],
    )
    def test_link_batch_identical_across_backends(
        self, fitted_models, small_pair, options
    ):
        mr, ma = fitted_models
        rng = np.random.default_rng(17)
        ids = small_pair.sample_queries(5, rng)
        queries = [small_pair.p_db[qid] for qid in ids]
        pool = list(small_pair.q_db)
        backends = ["python", "numpy"] + (["numba"] if numba_available() else [])
        results = {}
        for backend in backends:
            engine = LinkEngine(
                mr, ma, options=options.with_updates(kernel_backend=backend)
            )
            assert engine.kernel_backend == resolve_kernel_backend(backend)
            results[backend] = engine.link_batch(queries, pool)
        for backend in backends[1:]:
            assert results[backend] == results["python"]

    def test_stage_backends_surface(self, fitted_models):
        mr, ma = fitted_models
        engine = LinkEngine(
            mr, ma, options=LinkOptions(kernel_backend="numpy")
        )
        stages = engine.stage_backends()
        assert stages["profile"] == "numpy"
        assert stages["pb_test"] == "dp[numpy]"

    def test_env_pin_reaches_engine(self, fitted_models, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "python")
        mr, ma = fitted_models
        engine = LinkEngine(mr, ma)
        assert engine.kernel_backend == "python"
