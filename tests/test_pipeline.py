"""Experiment pipeline: evidence, tradeoff, ranking, runtime, tables."""

import math

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.filtering import AlphaFilter
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.errors import ValidationError
from repro.pipeline.experiment import (
    collect_evidence,
    fit_model_pair,
    perceptiveness_selectiveness,
)
from repro.pipeline.ranking_eval import format_ranking, ranking_from_evidence
from repro.pipeline.runtime_eval import RuntimeResult, format_runtime, run_runtime_eval
from repro.pipeline.tables import format_table, render_table1, table1_column
from repro.pipeline.tradeoff import (
    DEFAULT_ALPHA_LADDER,
    DEFAULT_PHI_LADDER,
    format_tradeoff,
    tradeoff_from_evidence,
)


@pytest.fixture(scope="module")
def evidence_bundle(small_pair):
    rng = np.random.default_rng(0)
    config = FTLConfig()
    mr, ma = fit_model_pair(small_pair, config, rng)
    query_ids = small_pair.sample_queries(12, rng)
    evidence = collect_evidence(small_pair, query_ids, mr, ma)
    return small_pair, mr, ma, query_ids, evidence


class TestEvidence:
    def test_shape(self, evidence_bundle):
        pair, _mr, _ma, qids, evidence = evidence_bundle
        assert len(evidence) == len(qids)
        assert evidence.n_candidates == len(pair.q_db)
        for qe in evidence:
            assert qe.p1.shape == (evidence.n_candidates,)
            assert qe.p2.shape == (evidence.n_candidates,)
            assert qe.llr.shape == (evidence.n_candidates,)

    def test_pvalues_in_unit_interval(self, evidence_bundle):
        _pair, _mr, _ma, _qids, evidence = evidence_bundle
        for qe in evidence:
            assert np.all((qe.p1 >= 0) & (qe.p1 <= 1))
            assert np.all((qe.p2 >= 0) & (qe.p2 <= 1))

    def test_alpha_mask_matches_matcher(self, evidence_bundle):
        pair, mr, ma, _qids, evidence = evidence_bundle
        matcher = AlphaFilter(mr, ma, 0.01, 0.1)
        qe = evidence.queries[0]
        mask = qe.alpha_filter_mask(0.01, 0.1)
        for cid, accepted in zip(qe.candidate_ids, mask):
            decision = matcher.decide(pair.p_db[qe.query_id], pair.q_db[cid])
            assert decision.accepted == bool(accepted)

    def test_nb_mask_matches_matcher(self, evidence_bundle):
        pair, mr, ma, _qids, evidence = evidence_bundle
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.05)
        qe = evidence.queries[0]
        mask = qe.naive_bayes_mask(0.05)
        for cid, same in zip(qe.candidate_ids, mask):
            decision = matcher.decide(pair.p_db[qe.query_id], pair.q_db[cid])
            assert decision.same_person == bool(same)

    def test_nb_mask_phi_validation(self, evidence_bundle):
        _pair, _mr, _ma, _qids, evidence = evidence_bundle
        with pytest.raises(ValidationError):
            evidence.queries[0].naive_bayes_mask(0.0)

    def test_scores_formula(self, evidence_bundle):
        _pair, _mr, _ma, _qids, evidence = evidence_bundle
        qe = evidence.queries[0]
        assert np.allclose(qe.scores(), qe.p1 * (1 - qe.p2))

    def test_empty_queries_rejected(self, evidence_bundle):
        pair, mr, ma, _qids, _evidence = evidence_bundle
        with pytest.raises(ValidationError):
            collect_evidence(pair, [], mr, ma)

    def test_perceptiveness_selectiveness(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        masks = [qe.naive_bayes_mask(0.1) for qe in evidence]
        perc, sel = perceptiveness_selectiveness(evidence, pair.truth, masks)
        assert 0.0 <= perc <= 1.0
        assert 0.0 <= sel <= 1.0

    def test_mask_count_mismatch(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        with pytest.raises(ValidationError):
            perceptiveness_selectiveness(evidence, pair.truth, [])


class TestTradeoff:
    def test_curve_structure(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        curves = tradeoff_from_evidence(evidence, pair.truth)
        assert set(curves) == {"alpha-filter", "naive-bayes"}
        assert len(curves["alpha-filter"]) == len(DEFAULT_ALPHA_LADDER)
        assert len(curves["naive-bayes"]) == len(DEFAULT_PHI_LADDER)

    def test_looser_settings_never_reduce_perceptiveness(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        curves = tradeoff_from_evidence(evidence, pair.truth)
        nb = curves["naive-bayes"]
        percs = [p.perceptiveness for p in nb]
        sels = [p.selectiveness for p in nb]
        # phi ladder is strict -> loose: both metrics non-decreasing.
        assert all(a <= b + 1e-12 for a, b in zip(percs, percs[1:]))
        assert all(a <= b + 1e-12 for a, b in zip(sels, sels[1:]))

    def test_format(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        text = format_tradeoff(tradeoff_from_evidence(evidence, pair.truth))
        assert "naive-bayes" in text
        assert "phi_r" in text


class TestRankingEval:
    def test_curves(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        curves = ranking_from_evidence(evidence, pair.truth, ks=[1, 5, 10, 20])
        for curve in curves.values():
            assert curve.ks == (1, 5, 10, 20)
            hits = list(curve.hits)
            assert hits == sorted(hits)  # non-decreasing in k
            assert hits[-1] <= curve.n_queries

    def test_format(self, evidence_bundle):
        pair, _mr, _ma, _qids, evidence = evidence_bundle
        text = format_ranking(
            ranking_from_evidence(evidence, pair.truth, ks=[1, 5])
        )
        assert "top-k" in text


class TestRuntimeEval:
    def test_runs_and_reports(self, small_pair):
        rng = np.random.default_rng(0)
        result = run_runtime_eval(
            small_pair, FTLConfig(), rng, n_queries=3, dataset="small"
        )
        assert result.dataset == "small"
        assert result.alpha_filter_s > 0
        assert result.naive_bayes_s > 0
        assert result.n_queries == 3

    def test_speedup(self):
        result = RuntimeResult("x", alpha_filter_s=0.2, naive_bayes_s=0.1,
                               n_queries=5)
        assert result.speedup == pytest.approx(2.0)
        zero = RuntimeResult("x", 0.1, 0.0, 5)
        assert math.isinf(zero.speedup)

    def test_format(self):
        text = format_runtime([RuntimeResult("SB", 0.01, 0.002, 10)])
        assert "SB" in text and "5.0x" in text


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_table1_column_values(self, small_pair):
        column = table1_column(small_pair, 5.0)
        assert column[0] == 5.0
        assert column[1] == pytest.approx(
            np.mean([len(t) for t in small_pair.p_db])
        )

    def test_render_table1(self, small_pair):
        text = render_table1({"X": small_pair}, {"X": 5.0})
        assert "mean of |P|" in text
        assert "X" in text

    def test_render_table1_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_table1({}, {})
