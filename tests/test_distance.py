"""Distance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.geo.distance import (
    EARTH_RADIUS_M,
    euclidean,
    euclidean_many,
    get_metric,
    haversine,
    haversine_many,
    metric_names,
)

finite_coord = st.floats(-1e6, 1e6, allow_nan=False)
lon = st.floats(-180.0, 180.0, allow_nan=False)
lat = st.floats(-89.0, 89.0, allow_nan=False)


class TestEuclidean:
    def test_pythagorean_triple(self):
        assert euclidean(0, 0, 3, 4) == 5.0

    def test_zero_distance(self):
        assert euclidean(7.5, -2.1, 7.5, -2.1) == 0.0

    def test_vectorised_matches_scalar(self):
        xs1 = np.array([0.0, 1.0, 2.0])
        ys1 = np.array([0.0, 1.0, 2.0])
        xs2 = np.array([3.0, 1.0, 5.0])
        ys2 = np.array([4.0, 2.0, 6.0])
        many = euclidean_many(xs1, ys1, xs2, ys2)
        for i in range(3):
            assert many[i] == pytest.approx(
                euclidean(xs1[i], ys1[i], xs2[i], ys2[i])
            )

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, x1, y1, x2, y2):
        assert euclidean(x1, y1, x2, y2) == euclidean(x2, y2, x1, y1)

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, x1, y1, x2, y2):
        assert euclidean(x1, y1, x2, y2) >= 0.0

    @given(
        finite_coord, finite_coord, finite_coord,
        finite_coord, finite_coord, finite_coord,
    )
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        d12 = euclidean(x1, y1, x2, y2)
        d23 = euclidean(x2, y2, x3, y3)
        d13 = euclidean(x1, y1, x3, y3)
        assert d13 <= d12 + d23 + 1e-6


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(103.8, 1.35, 103.8, 1.35) == 0.0

    def test_equator_degree(self):
        # One degree of longitude at the equator ~ 111.2 km.
        d = haversine(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(2 * np.pi * EARTH_RADIUS_M / 360.0, rel=1e-6)

    def test_antipodal(self):
        d = haversine(0.0, 0.0, 180.0, 0.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M, rel=1e-6)

    def test_known_city_pair(self):
        # Singapore (103.85, 1.29) to Kuala Lumpur (101.69, 3.14): ~316 km.
        d = haversine(103.85, 1.29, 101.69, 3.14)
        assert 300_000 < d < 330_000

    @given(lon, lat, lon, lat)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, lon1, lat1, lon2, lat2):
        assert haversine(lon1, lat1, lon2, lat2) == pytest.approx(
            haversine(lon2, lat2, lon1, lat1)
        )

    @given(lon, lat, lon, lat)
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_half_circumference(self, lon1, lat1, lon2, lat2):
        assert haversine(lon1, lat1, lon2, lat2) <= np.pi * EARTH_RADIUS_M * (1 + 1e-9)

    def test_vectorised_matches_scalar(self):
        lons = np.array([103.8, 0.0])
        lats = np.array([1.35, 51.5])
        d = haversine_many(lons, lats, lons + 0.1, lats + 0.1)
        for i in range(2):
            assert d[i] == pytest.approx(
                haversine(lons[i], lats[i], lons[i] + 0.1, lats[i] + 0.1)
            )


class TestRegistry:
    def test_known_metrics(self):
        assert set(metric_names()) == {"euclidean", "haversine"}

    def test_get_metric_returns_callable(self):
        fn = get_metric("euclidean")
        assert float(fn(0.0, 0.0, 3.0, 4.0)) == 5.0

    def test_unknown_metric_raises(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            get_metric("manhattan")
