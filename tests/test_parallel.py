"""Parallel query linking."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel import link_queries_parallel


@pytest.fixture(scope="module")
def query_set(small_pair):
    rng = np.random.default_rng(0)
    ids = small_pair.sample_queries(8, rng)
    return [small_pair.p_db[pid] for pid in ids]


class TestSequentialPath:
    def test_n_workers_one(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        results = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=1, phi_r=0.1
        )
        assert len(results) == len(query_set)
        for query, result in zip(query_set, results):
            assert result.query_id == query.traj_id

    def test_empty_queries_rejected(self, small_pair, fitted_models):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            link_queries_parallel([], mr, ma, small_pair.q_db)

    def test_bad_workers_rejected(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            link_queries_parallel(
                query_set, mr, ma, small_pair.q_db, n_workers=0
            )
        with pytest.raises(ValidationError):
            link_queries_parallel(
                query_set, mr, ma, small_pair.q_db, chunksize=0
            )


class TestParallelPath:
    def test_matches_sequential(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        sequential = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=1, phi_r=0.1
        )
        parallel = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=2, phi_r=0.1,
            chunksize=2,
        )
        assert len(parallel) == len(sequential)
        for seq, par in zip(sequential, parallel):
            assert seq.query_id == par.query_id
            assert seq.candidate_ids() == par.candidate_ids()
            for a, b in zip(seq.candidates, par.candidates):
                assert a.score == pytest.approx(b.score)

    def test_alpha_filter_method(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        results = link_queries_parallel(
            query_set[:4], mr, ma, small_pair.q_db, n_workers=2,
            method="alpha-filter", alpha1=0.01, alpha2=0.1,
        )
        assert all(r.method == "alpha-filter" for r in results)

    def test_finds_true_matches(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        truth = small_pair.truth
        results = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=2, phi_r=0.1
        )
        hits = sum(
            1 for r in results if r.contains(truth[r.query_id])
        )
        assert hits >= len(query_set) - 2
