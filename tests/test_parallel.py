"""Parallel query linking."""

import numpy as np
import pytest

from repro.core.engine import LinkOptions
from repro.errors import ValidationError
from repro.parallel import link_queries_parallel

NB_OPTIONS = LinkOptions(method="naive-bayes", phi_r=0.1)


@pytest.fixture(scope="module")
def query_set(small_pair):
    rng = np.random.default_rng(0)
    ids = small_pair.sample_queries(8, rng)
    return [small_pair.p_db[pid] for pid in ids]


class TestSequentialPath:
    def test_n_workers_one(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        results = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=1,
            options=NB_OPTIONS,
        )
        assert len(results) == len(query_set)
        for query, result in zip(query_set, results):
            assert result.query_id == query.traj_id

    def test_empty_queries_rejected(self, small_pair, fitted_models):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            link_queries_parallel([], mr, ma, small_pair.q_db)

    def test_bad_workers_rejected(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            link_queries_parallel(
                query_set, mr, ma, small_pair.q_db, n_workers=0
            )
        with pytest.raises(ValidationError):
            link_queries_parallel(
                query_set, mr, ma, small_pair.q_db, chunksize=0
            )


class TestParallelPath:
    def test_matches_sequential(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        sequential = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=1,
            options=NB_OPTIONS,
        )
        parallel = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=2,
            options=NB_OPTIONS, chunksize=2,
        )
        assert parallel == sequential  # bit-identical LinkResults

    def test_alpha_filter_method(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        results = link_queries_parallel(
            query_set[:4], mr, ma, small_pair.q_db, n_workers=2,
            options=LinkOptions(method="alpha-filter", alpha1=0.01, alpha2=0.1),
        )
        assert all(r.method == "alpha-filter" for r in results)

    def test_finds_true_matches(self, small_pair, fitted_models, query_set):
        mr, ma = fitted_models
        truth = small_pair.truth
        results = link_queries_parallel(
            query_set, mr, ma, small_pair.q_db, n_workers=2,
            options=NB_OPTIONS,
        )
        hits = sum(
            1 for r in results if r.contains(truth[r.query_id])
        )
        assert hits >= len(query_set) - 2


class TestRemovedKwargs:
    """The pre-1.0 alpha1/alpha2/phi_r kwargs are gone (see docs/api-v1.md)."""

    @pytest.mark.parametrize(
        "legacy", [{"phi_r": 0.1}, {"alpha1": 0.01}, {"alpha2": 0.1}]
    )
    def test_legacy_kwargs_rejected(
        self, small_pair, fitted_models, query_set, legacy
    ):
        mr, ma = fitted_models
        with pytest.raises(TypeError, match="unexpected keyword"):
            link_queries_parallel(
                query_set[:2], mr, ma, small_pair.q_db, n_workers=1, **legacy
            )

    def test_options_path_does_not_warn(
        self, small_pair, fitted_models, query_set, recwarn
    ):
        mr, ma = fitted_models
        link_queries_parallel(
            query_set[:2], mr, ma, small_pair.q_db, n_workers=1,
            options=NB_OPTIONS,
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
