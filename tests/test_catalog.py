"""Dataset catalog."""

import numpy as np
import pytest

from repro.datasets.catalog import (
    CatalogEntry,
    build_scenario,
    catalog,
    catalog_entry,
)
from repro.errors import ValidationError
from repro.geo.units import days_to_seconds


class TestCatalogContents:
    def test_all_paper_configs_present(self):
        names = set(catalog())
        for letter in "ABCDEF":
            assert f"S{letter}" in names
            assert f"T{letter}" in names
            assert f"S{letter}-mini" in names
            assert f"T{letter}-mini" in names
        assert {"FIG8A", "FIG8B", "FIG8A-mini", "FIG8B-mini"} <= names

    def test_catalog_copy_isolated(self):
        snapshot = catalog()
        snapshot.clear()
        assert len(catalog()) > 0

    def test_lookup_known(self):
        entry = catalog_entry("SA")
        assert entry.protocol == "paired"
        assert entry.duration_days == 31.0

    def test_lookup_unknown(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            catalog_entry("XX")

    def test_s_series_rate_ordering(self):
        rates = [catalog_entry(f"S{x}").rate_p_per_hour for x in "ABC"]
        assert rates == sorted(rates)

    def test_sd_sf_duration_ordering(self):
        durations = [catalog_entry(f"S{x}").duration_days for x in "DEF"]
        assert durations == sorted(durations)
        assert all(d < 31 for d in durations)

    def test_t_series_split_protocol(self):
        for letter in "ABCDEF":
            assert catalog_entry(f"T{letter}").protocol == "split"

    def test_td_tf_trims(self):
        trims = [catalog_entry(f"T{x}").trim_days for x in "DEF"]
        assert trims == [2.0, 4.0, 6.0]


class TestEntryValidation:
    def test_paired_needs_rates(self):
        with pytest.raises(ValidationError):
            CatalogEntry(
                name="x", protocol="paired", description="", n_agents=5,
                duration_days=1.0,
            )

    def test_split_needs_dense_rate(self):
        with pytest.raises(ValidationError):
            CatalogEntry(
                name="x", protocol="split", description="", n_agents=5,
                duration_days=1.0,
            )

    def test_unknown_protocol(self):
        with pytest.raises(ValidationError):
            CatalogEntry(
                name="x", protocol="magic", description="", n_agents=5,
                duration_days=1.0,
            )

    def test_tiny_population_rejected(self):
        with pytest.raises(ValidationError):
            CatalogEntry(
                name="x", protocol="paired", description="", n_agents=1,
                duration_days=1.0, rate_p_per_hour=1.0, rate_q_per_hour=1.0,
            )


class TestBuild:
    def test_deterministic_without_rng(self):
        a = build_scenario("SD-mini")
        b = build_scenario("SD-mini")
        assert a.p_db.total_records() == b.p_db.total_records()
        assert list(a.truth) == list(b.truth)
        first = next(iter(a.p_db))
        assert np.allclose(first.ts, b.p_db[first.traj_id].ts)

    def test_explicit_rng_varies(self):
        a = build_scenario("SD-mini", np.random.default_rng(1))
        b = build_scenario("SD-mini", np.random.default_rng(2))
        assert a.p_db.total_records() != b.p_db.total_records()

    def test_paired_build_shape(self):
        pair = build_scenario("SD-mini")
        entry = catalog_entry("SD-mini")
        assert len(pair.p_db) <= entry.n_agents
        assert len(pair.truth) > 0

    def test_split_build_durations_trimmed(self):
        pair = build_scenario("TD-mini")
        limit = days_to_seconds(2.0)
        for traj in pair.p_db:
            assert traj.duration <= limit

    def test_mini_record_scale_reasonable(self):
        pair = build_scenario("SC-mini")
        mean_p = np.mean([len(t) for t in pair.p_db])
        # 0.55/h over 10 days ~ 132 records.
        assert 100 < mean_p < 170

    def test_road_variant_builds_and_links(self):
        rng = np.random.default_rng(0)
        pair = build_scenario("SB-road-mini")
        assert len(pair.truth) > 0
        from repro.config import FTLConfig
        from repro.core.linker import FTLLinker

        linker = FTLLinker(FTLConfig(), phi_r=0.2).fit(
            pair.p_db, pair.q_db, rng
        )
        qids = pair.sample_queries(10, rng)
        hits = sum(
            1
            for pid in qids
            if linker.link(pair.p_db[pid]).contains(pair.truth[pid])
        )
        assert hits >= 6

    def test_noise_spec_parsing_tower(self):
        entry = catalog_entry("SA-mini")
        tower_variant = CatalogEntry(
            **{**entry.__dict__, "name": "tower-test", "noise_q": "tower",
               "duration_days": 1.0, "n_agents": 3},
        )
        pair = tower_variant.build(np.random.default_rng(0))
        assert len(pair.q_db) > 0

    def test_bad_noise_spec(self):
        entry = catalog_entry("SA-mini")
        bad = CatalogEntry(
            **{**entry.__dict__, "name": "bad", "noise_q": "gps:abc",
               "duration_days": 1.0, "n_agents": 3},
        )
        with pytest.raises(ValidationError):
            bad.build(np.random.default_rng(0))
