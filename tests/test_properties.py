"""Cross-module property-based invariants (hypothesis).

These tie together alignment, models, hypothesis testing and matching
on randomly generated inputs, checking the statistical invariants the
algorithms rely on rather than specific values.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FTLConfig
from repro.core.alignment import MutualSegmentProfile, mutual_segment_profile
from repro.core.filtering import AlphaFilter
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import (
    ACCEPTANCE,
    REJECTION,
    BucketCounts,
    CompatibilityModel,
)
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.core.trajectory import Trajectory
from repro.stats.poisson_binomial import PoissonBinomial

CONFIG = FTLConfig(smoothing=0.0, min_bucket_count=1)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def trajectory_strategy(max_len=25, span=2e4, extent=3e4):
    @st.composite
    def build(draw):
        n = draw(st.integers(0, max_len))
        ts = sorted(
            draw(
                st.lists(
                    st.floats(0, span, allow_nan=False), min_size=n, max_size=n
                )
            )
        )
        seed = draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0, extent, n)
        ys = rng.uniform(0, extent, n)
        return Trajectory(ts, xs, ys)

    return build()


def model_pair_strategy():
    @st.composite
    def build(draw):
        n = CONFIG.n_buckets
        # Rejection probabilities small-ish, acceptance larger.
        base_r = draw(st.floats(0.0, 0.3))
        base_a = draw(st.floats(0.3, 1.0))
        counts_r = BucketCounts.zeros(n)
        counts_r.total[:] = 100
        counts_r.incompatible[:] = int(round(base_r * 100))
        counts_a = BucketCounts.zeros(n)
        counts_a.total[:] = 100
        counts_a.incompatible[:] = int(round(base_a * 100))
        return (
            CompatibilityModel(REJECTION, counts_r, CONFIG),
            CompatibilityModel(ACCEPTANCE, counts_a, CONFIG),
        )

    return build()


def profile_strategy(max_len=30):
    @st.composite
    def build(draw):
        n = draw(st.integers(0, max_len))
        buckets = draw(
            st.lists(st.integers(0, 70), min_size=n, max_size=n)
        )
        incompatible = draw(
            st.lists(st.booleans(), min_size=n, max_size=n)
        )
        return MutualSegmentProfile(
            np.asarray(buckets, dtype=np.int64),
            np.asarray(incompatible, dtype=bool),
        )

    return build()


# ----------------------------------------------------------------------
# Profile invariants
# ----------------------------------------------------------------------
class TestProfileInvariants:
    @given(trajectory_strategy(), trajectory_strategy())
    @settings(max_examples=40, deadline=None)
    def test_profile_counts_bounded(self, p, q):
        profile = mutual_segment_profile(p, q, CONFIG)
        assert profile.n_incompatible <= profile.n_total
        assert profile.n_total <= max(len(p) + len(q) - 1, 0)

    @given(trajectory_strategy(), trajectory_strategy())
    @settings(max_examples=40, deadline=None)
    def test_profile_symmetric_counts_distinct_times(self, p, q):
        # Symmetry holds when no timestamps coincide; with ties the
        # paper's fixed P-before-Q tie order makes the alignment (and
        # therefore the count) order-dependent by construction.
        all_ts = np.concatenate([p.ts, q.ts])
        if np.unique(all_ts).size != all_ts.size:
            return
        a = mutual_segment_profile(p, q, CONFIG)
        b = mutual_segment_profile(q, p, CONFIG)
        assert a.n_total == b.n_total
        assert a.n_incompatible == b.n_incompatible

    @given(trajectory_strategy())
    @settings(max_examples=40, deadline=None)
    def test_identical_copy_fully_compatible(self, p):
        # A trajectory aligned with an exact copy of itself can only
        # produce compatible mutual segments under a loose speed cap:
        # coincident records have dist 0, and consecutive distinct
        # records satisfy any sufficiently large Vmax.  Trajectories
        # with repeated timestamps at different places are excluded —
        # those are self-incompatible regardless of Vmax (the paper's
        # "inaccuracy" case).
        if len(p) > 1 and np.any(np.diff(p.ts) < 1e-3):
            return
        loose = CONFIG.with_updates(vmax_kph=1e12)
        profile = mutual_segment_profile(p, p.with_id("copy"), loose)
        assert profile.n_incompatible == 0

    @given(trajectory_strategy(), trajectory_strategy())
    @settings(max_examples=40, deadline=None)
    def test_stricter_vmax_never_reduces_incompatibilities(self, p, q):
        strict = mutual_segment_profile(
            p, q, CONFIG.with_updates(vmax_kph=30.0)
        )
        loose = mutual_segment_profile(
            p, q, CONFIG.with_updates(vmax_kph=300.0)
        )
        assert strict.n_incompatible >= loose.n_incompatible


# ----------------------------------------------------------------------
# P-value invariants
# ----------------------------------------------------------------------
class TestPvalueInvariants:
    @given(profile_strategy(), model_pair_strategy())
    @settings(max_examples=50, deadline=None)
    def test_pvalues_in_unit_interval(self, profile, models):
        mr, ma = models
        p1 = rejection_pvalue(profile, mr)
        p2 = acceptance_pvalue(profile, ma)
        assert 0.0 <= p1 <= 1.0
        assert 0.0 <= p2 <= 1.0

    @given(profile_strategy(), model_pair_strategy())
    @settings(max_examples=50, deadline=None)
    def test_pvalue_tails_complementary(self, profile, models):
        """p1 (upper tail at k) + lower tail at k-1 == 1 under one model."""
        mr, _ma = models
        within = profile.within_horizon(mr.n_buckets)
        if within.n_total == 0:
            return
        ps = mr.probs_for(within.buckets)
        k = within.n_incompatible
        pb = PoissonBinomial(ps)
        assert pb.sf(k) + pb.cdf(k - 1) == pytest.approx(1.0, abs=1e-9)

    @given(model_pair_strategy(), st.integers(1, 25))
    @settings(max_examples=50, deadline=None)
    def test_score_monotone_in_incompatibilities(self, models, n):
        """Eq. 2 score never increases as incompatibilities increase."""
        mr, ma = models
        scores = []
        for k in range(n + 1):
            profile = MutualSegmentProfile(
                np.full(n, 1, dtype=np.int64),
                np.array([True] * k + [False] * (n - k), dtype=bool),
            )
            p1 = rejection_pvalue(profile, mr)
            p2 = acceptance_pvalue(profile, ma)
            scores.append(p1 * (1.0 - p2))
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))


# ----------------------------------------------------------------------
# Matcher consistency
# ----------------------------------------------------------------------
class TestMatcherConsistency:
    @given(profile_strategy(), model_pair_strategy(),
           st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_alpha_filter_decision_formula(self, profile, models, a1, a2):
        mr, ma = models
        matcher = AlphaFilter(mr, ma, a1, a2)
        decision = matcher.decide_profile(profile)
        p1 = rejection_pvalue(profile, mr)
        if p1 < a1:
            assert not decision.accepted
            assert decision.rejected_in_phase1
        else:
            p2 = acceptance_pvalue(profile, ma)
            assert decision.accepted == (p2 < a2)

    @given(profile_strategy(), model_pair_strategy(), st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_nb_decision_equals_llr_threshold(self, profile, models, phi_r):
        mr, ma = models
        matcher = NaiveBayesMatcher(mr, ma, phi_r)
        decision = matcher.decide_profile(profile)
        llr = (
            decision.log_likelihood_rejection
            - decision.log_likelihood_acceptance
        )
        threshold = math.log(1.0 - phi_r) - math.log(phi_r)
        assert decision.same_person == (llr >= threshold)

    @given(profile_strategy(), model_pair_strategy())
    @settings(max_examples=50, deadline=None)
    def test_nb_loose_prior_superset(self, profile, models):
        mr, ma = models
        strict = NaiveBayesMatcher(mr, ma, 0.01).decide_profile(profile)
        loose = NaiveBayesMatcher(mr, ma, 0.6).decide_profile(profile)
        assert loose.same_person or not strict.same_person


# ----------------------------------------------------------------------
# Model fitting invariants
# ----------------------------------------------------------------------
class TestModelFitInvariants:
    @given(st.lists(trajectory_strategy(max_len=15), min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_fitted_probs_valid(self, trajs):
        from repro.core.database import TrajectoryDatabase

        db = TrajectoryDatabase(
            (t.with_id(i) for i, t in enumerate(trajs))
        )
        config = FTLConfig()  # with smoothing
        mr = CompatibilityModel.fit_rejection([db], config)
        probs = mr.probs_for(np.arange(mr.n_buckets))
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_acceptance_fit_deterministic_given_seed(self, seed):
        from repro.core.database import TrajectoryDatabase

        rng = np.random.default_rng(3)
        trajs = []
        for i in range(6):
            n = 10
            ts = np.sort(rng.uniform(0, 1e4, n))
            trajs.append(
                Trajectory(ts, rng.uniform(0, 1e4, n), rng.uniform(0, 1e4, n), i)
            )
        db = TrajectoryDatabase(trajs)
        a = CompatibilityModel.fit_acceptance(
            [db], CONFIG, np.random.default_rng(seed)
        )
        b = CompatibilityModel.fit_acceptance(
            [db], CONFIG, np.random.default_rng(seed)
        )
        assert np.array_equal(a.counts.total, b.counts.total)
        assert np.array_equal(a.counts.incompatible, b.counts.incompatible)
