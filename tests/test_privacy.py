"""Privacy defenses and the linkability/utility sweep."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.privacy.defenses import (
    GaussianPerturbation,
    RecordSuppression,
    SpatialCloaking,
    TemporalCloaking,
)
from repro.privacy.evaluation import (
    evaluate_defense_sweep,
    format_defense_sweep,
)


@pytest.fixture
def traj():
    rng = np.random.default_rng(0)
    n = 200
    ts = np.sort(rng.uniform(0, 86400.0, n))
    return Trajectory(ts, rng.uniform(0, 10_000, n), rng.uniform(0, 10_000, n), "t")


class TestTemporalCloaking:
    def test_rounds_down_to_window(self, traj, rng):
        defended = TemporalCloaking(900.0).apply(traj, rng)
        assert np.all(defended.ts % 900.0 == 0)
        assert np.all(defended.ts <= traj.ts)
        assert np.all(traj.ts - defended.ts < 900.0)

    def test_preserves_locations(self, traj, rng):
        defended = TemporalCloaking(900.0).apply(traj, rng)
        # Order may change only among ties; sets of coordinates agree.
        assert sorted(defended.xs) == sorted(traj.xs)

    def test_distortions(self):
        defense = TemporalCloaking(600.0)
        assert defense.temporal_distortion_s() == 300.0
        assert defense.spatial_distortion_m() == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            TemporalCloaking(0.0)


class TestSpatialCloaking:
    def test_snaps_to_cell_centres(self, traj, rng):
        defended = SpatialCloaking(1000.0).apply(traj, rng)
        assert np.all((defended.xs - 500.0) % 1000.0 == 0)
        assert np.all(np.abs(defended.xs - traj.xs) <= 500.0)

    def test_preserves_timestamps(self, traj, rng):
        defended = SpatialCloaking(1000.0).apply(traj, rng)
        assert np.array_equal(defended.ts, traj.ts)

    def test_distortion_formula(self, rng):
        cell = 2000.0
        defense = SpatialCloaking(cell)
        n = 50_000
        xs = rng.uniform(0, cell, n)
        ys = rng.uniform(0, cell, n)
        observed = np.hypot(xs - cell / 2, ys - cell / 2).mean()
        assert defense.spatial_distortion_m() == pytest.approx(observed, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpatialCloaking(-5.0)


class TestGaussianPerturbation:
    def test_moves_points(self, traj, rng):
        defended = GaussianPerturbation(100.0).apply(traj, rng)
        assert not np.array_equal(defended.xs, traj.xs)
        assert np.array_equal(defended.ts, traj.ts)

    def test_zero_sigma_identity(self, traj, rng):
        assert GaussianPerturbation(0.0).apply(traj, rng) is traj

    def test_distortion_is_rayleigh_mean(self, traj):
        rng = np.random.default_rng(1)
        defense = GaussianPerturbation(200.0)
        defended = defense.apply(traj, rng)
        observed = np.hypot(defended.xs - traj.xs, defended.ys - traj.ys).mean()
        assert defense.spatial_distortion_m() == pytest.approx(observed, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValidationError):
            GaussianPerturbation(-1.0)


class TestRecordSuppression:
    def test_drops_expected_fraction(self, traj):
        rng = np.random.default_rng(2)
        defense = RecordSuppression(0.5)
        kept = len(defense.apply(traj, rng))
        assert 0.35 * len(traj) < kept < 0.65 * len(traj)

    def test_zero_rate_identity(self, traj, rng):
        assert len(RecordSuppression(0.0).apply(traj, rng)) == len(traj)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RecordSuppression(1.0)
        with pytest.raises(ValidationError):
            RecordSuppression(-0.1)


class TestDefenseSweep:
    def test_baseline_first(self, small_pair, rng):
        points = evaluate_defense_sweep(
            small_pair, [TemporalCloaking(1800.0)], FTLConfig(), rng,
            n_queries=10,
        )
        assert points[0].defense == "none"
        assert points[0].strength == 0.0
        assert len(points) == 2

    def test_temporal_cloaking_reduces_linkability(self, small_pair, rng):
        points = evaluate_defense_sweep(
            small_pair,
            [TemporalCloaking(1800.0), TemporalCloaking(7200.0)],
            FTLConfig(), rng, n_queries=15,
        )
        baseline = points[0].linkability
        strongest = points[-1].linkability
        assert strongest <= baseline
        assert strongest <= 0.5  # 2-hour cloaking cripples FTL

    def test_suppression_reduces_linkability(self, small_pair, rng):
        points = evaluate_defense_sweep(
            small_pair, [RecordSuppression(0.9)], FTLConfig(), rng,
            n_queries=15,
        )
        assert points[1].linkability <= points[0].linkability

    def test_validation(self, small_pair, rng):
        with pytest.raises(ValidationError):
            evaluate_defense_sweep(small_pair, [], FTLConfig(), rng)
        with pytest.raises(ValidationError):
            evaluate_defense_sweep(
                small_pair, [TemporalCloaking(60.0)], FTLConfig(), rng,
                n_queries=0,
            )

    def test_format(self, small_pair, rng):
        points = evaluate_defense_sweep(
            small_pair, [SpatialCloaking(1000.0)], FTLConfig(), rng,
            n_queries=5,
        )
        text = format_defense_sweep(points)
        assert "linkability" in text
        assert "SpatialCloaking" in text
