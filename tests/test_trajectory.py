"""Trajectory data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import Record
from repro.core.trajectory import Trajectory
from repro.errors import (
    EmptyTrajectoryError,
    UnsortedRecordsError,
    ValidationError,
)


@pytest.fixture
def traj() -> Trajectory:
    return Trajectory(
        [0.0, 60.0, 120.0, 300.0],
        [0.0, 100.0, 200.0, 500.0],
        [0.0, 0.0, 50.0, 100.0],
        "t1",
    )


class TestConstruction:
    def test_basic(self, traj):
        assert len(traj) == 4
        assert traj.traj_id == "t1"

    def test_empty(self):
        t = Trajectory.empty("e")
        assert len(t) == 0
        assert t.duration == 0.0

    def test_unsorted_rejected(self):
        with pytest.raises(UnsortedRecordsError):
            Trajectory([2.0, 1.0], [0, 0], [0, 0])

    def test_sort_flag(self):
        t = Trajectory([2.0, 1.0], [20.0, 10.0], [0, 0], sort=True)
        assert list(t.ts) == [1.0, 2.0]
        assert list(t.xs) == [10.0, 20.0]

    def test_sort_is_stable_for_ties(self):
        t = Trajectory([1.0, 1.0], [5.0, 6.0], [0, 0], sort=True)
        assert list(t.xs) == [5.0, 6.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Trajectory([1.0, 2.0], [0.0], [0.0, 0.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            Trajectory([np.nan], [0.0], [0.0])
        with pytest.raises(ValidationError):
            Trajectory([0.0], [np.inf], [0.0])

    def test_2d_input_rejected(self):
        with pytest.raises(ValidationError):
            Trajectory(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_from_records(self):
        t = Trajectory.from_records(
            [Record(1.0, 10.0, 20.0), Record(2.0, 30.0, 40.0)], "r"
        )
        assert len(t) == 2
        assert t[1] == Record(2.0, 30.0, 40.0)

    def test_from_records_sorts(self):
        t = Trajectory.from_records(
            [Record(2.0, 0, 0), Record(1.0, 0, 0)], sort=True
        )
        assert t.start_time == 1.0


class TestProtocol:
    def test_iter_yields_records(self, traj):
        records = list(traj)
        assert records[0] == Record(0.0, 0.0, 0.0)
        assert records[-1] == Record(300.0, 500.0, 100.0)

    def test_getitem(self, traj):
        assert traj[2] == Record(120.0, 200.0, 50.0)

    def test_negative_index(self, traj):
        assert traj[-1].t == 300.0

    def test_equality(self, traj):
        same = Trajectory(traj.ts, traj.xs, traj.ys, "t1")
        assert traj == same
        assert traj != same.with_id("other")

    def test_repr_contains_id(self, traj):
        assert "t1" in repr(traj)

    def test_columns_readonly(self, traj):
        with pytest.raises(ValueError):
            traj.ts[0] = 99.0


class TestStatistics:
    def test_start_end_duration(self, traj):
        assert traj.start_time == 0.0
        assert traj.end_time == 300.0
        assert traj.duration == 300.0

    def test_empty_stats_raise(self):
        t = Trajectory.empty()
        with pytest.raises(EmptyTrajectoryError):
            _ = t.start_time

    def test_gaps(self, traj):
        assert list(traj.gaps()) == [60.0, 60.0, 180.0]

    def test_mean_gap(self, traj):
        assert traj.mean_gap() == pytest.approx(100.0)

    def test_single_record_gap(self):
        t = Trajectory([1.0], [0.0], [0.0])
        assert t.gaps().size == 0
        assert t.mean_gap() == 0.0
        assert t.duration == 0.0


class TestTransforms:
    def test_slice_time(self, traj):
        sliced = traj.slice_time(60.0, 300.0)
        assert list(sliced.ts) == [60.0, 120.0]

    def test_slice_time_bad_interval(self, traj):
        with pytest.raises(ValidationError):
            traj.slice_time(100.0, 50.0)

    def test_head_duration(self, traj):
        head = traj.head_duration(121.0)
        assert len(head) == 3

    def test_head_duration_empty(self):
        t = Trajectory.empty()
        assert len(t.head_duration(10.0)) == 0

    def test_downsample_rate_one_is_identity(self, traj):
        rng = np.random.default_rng(0)
        assert traj.downsample(1.0, rng) is traj

    def test_downsample_rate_zero_empties(self, traj):
        rng = np.random.default_rng(0)
        assert len(traj.downsample(0.0, rng)) == 0

    def test_downsample_bad_rate(self, traj):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            traj.downsample(1.5, rng)

    def test_downsample_expected_count(self):
        rng = np.random.default_rng(5)
        n = 10_000
        t = Trajectory(np.arange(n, dtype=float), np.zeros(n), np.zeros(n))
        kept = len(t.downsample(0.3, rng))
        assert 0.27 * n < kept < 0.33 * n

    def test_thin(self, traj):
        thinned = traj.thin(2)
        assert list(thinned.ts) == [0.0, 120.0]

    def test_thin_bad(self, traj):
        with pytest.raises(ValidationError):
            traj.thin(0)

    def test_time_shifted(self, traj):
        shifted = traj.time_shifted(100.0)
        assert shifted.start_time == 100.0
        assert len(shifted) == len(traj)

    def test_concat_interleaves(self):
        a = Trajectory([0.0, 100.0], [0, 0], [0, 0], "a")
        b = Trajectory([50.0, 150.0], [1, 1], [1, 1], "b")
        merged = a.concat(b, traj_id="ab")
        assert list(merged.ts) == [0.0, 50.0, 100.0, 150.0]
        assert merged.traj_id == "ab"

    def test_with_id(self, traj):
        assert traj.with_id(42).traj_id == 42


class TestProperties:
    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50)
    )
    @settings(max_examples=40, deadline=None)
    def test_sorted_construction_always_time_ordered(self, times):
        n = len(times)
        t = Trajectory(times, np.zeros(n), np.zeros(n), sort=True)
        assert np.all(np.diff(t.ts) >= 0)

    @given(
        st.integers(1, 40),
        st.floats(0.1, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_downsample_never_grows(self, n, rate):
        rng = np.random.default_rng(0)
        t = Trajectory(np.arange(n, dtype=float), np.zeros(n), np.zeros(n))
        assert len(t.downsample(rate, rng)) <= n

    @given(st.integers(1, 30), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_thin_length(self, n, k):
        t = Trajectory(np.arange(n, dtype=float), np.zeros(n), np.zeros(n))
        assert len(t.thin(k)) == int(np.ceil(n / k))
