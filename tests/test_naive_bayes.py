"""Naive-Bayes matching (paper Section IV-E)."""

import math

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.alignment import MutualSegmentProfile
from repro.core.models import ACCEPTANCE, REJECTION, BucketCounts, CompatibilityModel
from repro.core.naive_bayes import NaiveBayesMatcher, _log_likelihood
from repro.errors import ValidationError


def model_with_prob(kind, prob, config):
    counts = BucketCounts.zeros(config.n_buckets)
    counts.total[:] = 1000
    counts.incompatible[:] = int(round(prob * 1000))
    return CompatibilityModel(kind, counts, config)


def profile(n, k, bucket=1):
    return MutualSegmentProfile(
        np.full(n, bucket, dtype=np.int64),
        np.array([True] * k + [False] * (n - k), dtype=bool),
    )


@pytest.fixture
def config():
    return FTLConfig(smoothing=0.0, min_bucket_count=1)


@pytest.fixture
def matcher(config):
    mr = model_with_prob(REJECTION, 0.02, config)
    ma = model_with_prob(ACCEPTANCE, 0.8, config)
    return NaiveBayesMatcher(mr, ma, phi_r=0.05)


class TestLogLikelihood:
    def test_hand_computed(self):
        ps = np.array([0.2, 0.7])
        incompatible = np.array([True, False])
        expected = math.log(0.2) + math.log(0.3)
        assert _log_likelihood(ps, incompatible, 1e-12) == pytest.approx(expected)

    def test_zero_prob_clamped(self):
        ps = np.array([0.0])
        incompatible = np.array([True])
        value = _log_likelihood(ps, incompatible, 1e-9)
        assert value == pytest.approx(math.log(1e-9))

    def test_empty_is_zero(self):
        assert _log_likelihood(np.array([]), np.array([], dtype=bool), 1e-9) == 0.0


class TestConstruction:
    def test_phi_bounds(self, config):
        mr = model_with_prob(REJECTION, 0.02, config)
        ma = model_with_prob(ACCEPTANCE, 0.8, config)
        for bad in (0.0, 1.0, -0.1, 1.3):
            with pytest.raises(ValidationError):
                NaiveBayesMatcher(mr, ma, phi_r=bad)

    def test_phi_a_complement(self, matcher):
        assert matcher.phi_a == pytest.approx(1.0 - matcher.phi_r)


class TestDecide:
    def test_compatible_pattern_is_same_person(self, matcher):
        decision = matcher.decide_profile(profile(20, 0), candidate_id="c")
        assert decision.same_person
        assert decision.log_posterior_ratio > 0
        assert decision.candidate_id == "c"

    def test_incompatible_pattern_is_different(self, matcher):
        decision = matcher.decide_profile(profile(20, 16))
        assert not decision.same_person
        assert decision.log_posterior_ratio < 0

    def test_likelihoods_consistent_with_ratio(self, matcher):
        decision = matcher.decide_profile(profile(10, 2))
        expected = (
            math.log(matcher.phi_r)
            + decision.log_likelihood_rejection
            - math.log(matcher.phi_a)
            - decision.log_likelihood_acceptance
        )
        assert decision.log_posterior_ratio == pytest.approx(expected)

    def test_no_evidence_decided_by_prior(self, config):
        mr = model_with_prob(REJECTION, 0.02, config)
        ma = model_with_prob(ACCEPTANCE, 0.8, config)
        empty = profile(0, 0)
        assert not NaiveBayesMatcher(mr, ma, 0.3).decide_profile(empty).same_person
        assert NaiveBayesMatcher(mr, ma, 0.7).decide_profile(empty).same_person

    def test_counts_recorded(self, matcher):
        decision = matcher.decide_profile(profile(12, 3))
        assert decision.n_mutual == 12
        assert decision.n_incompatible == 3


class TestPriorMonotonicity:
    """Paper: larger phi_r loosens candidate selection."""

    @pytest.mark.parametrize("k", [0, 2, 5, 8])
    def test_larger_phi_never_flips_to_reject(self, config, k):
        mr = model_with_prob(REJECTION, 0.1, config)
        ma = model_with_prob(ACCEPTANCE, 0.6, config)
        prof = profile(15, k)
        strict = NaiveBayesMatcher(mr, ma, 0.001).decide_profile(prof).same_person
        loose = NaiveBayesMatcher(mr, ma, 0.5).decide_profile(prof).same_person
        assert loose or not strict


class TestQueryAPI:
    def test_query_returns_positives_only(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.05)
        pid = next(iter(small_pair.truth))
        results = matcher.query(small_pair.p_db[pid], small_pair.q_db)
        assert all(d.same_person for d in results)

    def test_query_high_perceptiveness(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.1)
        rng = np.random.default_rng(0)
        qids = small_pair.sample_queries(15, rng)
        hits = sum(
            1
            for pid in qids
            if any(
                d.candidate_id == small_pair.truth[pid]
                for d in matcher.query(small_pair.p_db[pid], small_pair.q_db)
            )
        )
        assert hits >= 11

    def test_query_selective(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.05)
        rng = np.random.default_rng(0)
        qids = small_pair.sample_queries(10, rng)
        total = sum(
            len(matcher.query(small_pair.p_db[pid], small_pair.q_db))
            for pid in qids
        )
        assert total / 10 < 0.2 * len(small_pair.q_db)

    def test_agrees_with_trajectory_level_decide(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.05)
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        decision = matcher.decide(small_pair.p_db[pid], small_pair.q_db[qid])
        assert decision.candidate_id == qid
        assert decision.same_person  # true pair should be matched
