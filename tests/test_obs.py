"""Observability: trace IDs, stage timers, Prometheus exposition, retries.

Unit-level coverage of :mod:`repro.obs` plus end-to-end checks against
a live daemon: every ``/link`` response carries a trace ID that appears
in the structured log, ``/metrics`` serves a validating Prometheus
document with all six pipeline-stage histograms, and the client's
retry policy replays only what is safe to replay.
"""

import io
import json
import logging

import pytest

from repro import obs
from repro.core.engine import LinkEngine, LinkOptions
from repro.errors import RemoteServiceError, ValidationError
from repro.obs import (
    STAGES,
    JsonLogFormatter,
    MetricsSpanSink,
    StageAccumulator,
    render_exposition,
    validate_exposition,
)
from repro.obs.spans import STAGE_METRIC_PREFIX
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, ServerConfig
from repro.service.state import Histogram, Metrics, ServiceState

RANKING = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)


# ----------------------------------------------------------------------
# Trace IDs
# ----------------------------------------------------------------------
class TestTrace:
    def test_ids_are_unique_hex(self):
        ids = {obs.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)

    def test_trace_context_manager_binds_and_restores(self):
        assert obs.current_trace_id() is None
        with obs.trace() as outer:
            assert obs.current_trace_id() == outer
            with obs.trace("explicit-id") as inner:
                assert inner == "explicit-id"
                assert obs.current_trace_id() == "explicit-id"
            assert obs.current_trace_id() == outer
        assert obs.current_trace_id() is None

    def test_set_and_reset(self):
        token = obs.set_trace_id("abc123")
        try:
            assert obs.current_trace_id() == "abc123"
        finally:
            obs.reset_trace_id(token)
        assert obs.current_trace_id() is None


class TestStructuredLogging:
    def _capture(self):
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        logger = logging.getLogger("ftl.test-capture")
        logger.setLevel(logging.INFO)
        logger.addHandler(handler)
        return logger, handler, stream

    def test_log_event_carries_fields_and_trace_id(self):
        logger, handler, stream = self._capture()
        try:
            with obs.trace("feedbeef0000aaaa"):
                obs.log_event(logger, "request", path="/link", status=200)
        finally:
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "request"
        assert record["trace_id"] == "feedbeef0000aaaa"
        assert record["path"] == "/link"
        assert record["status"] == 200
        assert record["level"] == "info"

    def test_log_event_without_trace_omits_id(self):
        logger, handler, stream = self._capture()
        try:
            obs.log_event(logger, "tick")
        finally:
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue().strip())
        assert "trace_id" not in record

    def test_configure_json_logging_is_idempotent(self):
        stream = io.StringIO()
        first = obs.configure_json_logging(stream=stream)
        try:
            assert obs.configure_json_logging(stream=stream) is first
        finally:
            logging.getLogger("ftl").removeHandler(first)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_without_sink_is_noop(self):
        assert obs.current_sink() is None
        with obs.span("prefilter"):
            pass  # must not raise, must not record anywhere

    def test_use_sink_scopes_recording(self):
        acc = StageAccumulator()
        with obs.use_sink(acc):
            assert obs.current_sink() is acc
            with obs.span("rank"):
                pass
        assert obs.current_sink() is None
        assert acc.calls("rank") == 1
        assert acc.total_s("rank") >= 0.0

    def test_span_records_on_exception(self):
        acc = StageAccumulator()
        with obs.use_sink(acc):
            with pytest.raises(RuntimeError):
                with obs.span("pb_test"):
                    raise RuntimeError("boom")
        assert acc.calls("pb_test") == 1

    def test_metrics_span_sink_feeds_stage_histograms(self):
        metrics = Metrics()
        sink = MetricsSpanSink(metrics)
        with obs.use_sink(sink):
            with obs.span("profile"):
                pass
        snap = metrics.to_dict()
        assert STAGE_METRIC_PREFIX + "profile" in snap["latency"]
        assert snap["latency"][STAGE_METRIC_PREFIX + "profile"]["count"] == 1

    def test_accumulator_table_and_dict(self):
        acc = StageAccumulator()
        acc.record("profile", 0.030)
        acc.record("profile", 0.010)
        acc.record("rank", 0.001)
        assert acc.stages == ["profile", "rank"]
        as_dict = acc.to_dict()
        assert as_dict["profile"]["calls"] == 2
        assert as_dict["profile"]["total_ms"] == pytest.approx(40.0)
        assert as_dict["profile"]["max_ms"] == pytest.approx(30.0)
        table = acc.table(wall_s=0.050)
        assert "profile" in table and "rank" in table
        assert "share" in table

    def test_engine_stages_recorded_by_link_batch(self, fitted_models, small_pair):
        mr, ma = fitted_models
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(small_pair.q_db)
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        acc = StageAccumulator()
        with obs.use_sink(acc):
            engine.link_batch([query], iter(pool))
        for stage in ("blocking", "profile", "pb_test", "rank"):
            assert acc.calls(stage) >= 1, f"stage {stage} never recorded"


# ----------------------------------------------------------------------
# Histogram quantile boundaries (satellite bugfix)
# ----------------------------------------------------------------------
class TestHistogramQuantileBoundaries:
    def test_q0_is_zero_not_first_bucket_bound(self):
        hist = Histogram()
        hist.observe(0.5)
        assert hist.quantile(0.0) == 0.0

    def test_empty_histogram_all_quantiles_zero(self):
        hist = Histogram()
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0

    def test_single_observation_boundaries(self):
        hist = Histogram()
        hist.observe(0.005)
        assert hist.quantile(0.0) == 0.0
        # q=1 lands in the bucket holding the single sample: its upper
        # bound must cover the observed value.
        assert hist.quantile(1.0) >= 0.005
        assert hist.quantile(0.5) == hist.quantile(1.0)

    def test_q1_of_overflow_sample_is_observed_max(self):
        hist = Histogram()
        hist.observe(99.0)  # beyond the last bucket bound
        assert hist.quantile(1.0) == 99.0

    def test_out_of_range_rejected(self):
        hist = Histogram()
        with pytest.raises(ValidationError):
            hist.quantile(-0.1)
        with pytest.raises(ValidationError):
            hist.quantile(1.1)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheusExposition:
    def test_render_validates_clean(self):
        hist = Histogram()
        for v in (0.0002, 0.004, 0.004, 2.5):
            hist.observe(v)
        text = render_exposition(
            {"requests_total": 7},
            {"stage_profile": hist.snapshot()},
            {"queue_depth": 3},
        )
        assert validate_exposition(text) == []
        assert "# TYPE ftl_requests_total counter" in text
        assert "# TYPE ftl_stage_profile_seconds histogram" in text
        assert 'ftl_stage_profile_seconds_bucket{le="+Inf"} 4' in text
        assert "ftl_stage_profile_seconds_count 4" in text
        assert "# TYPE ftl_queue_depth gauge" in text

    def test_buckets_are_cumulative(self):
        hist = Histogram()
        hist.observe(0.0002)
        hist.observe(0.9)
        text = render_exposition({}, {"lat": hist.snapshot()})
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("ftl_lat_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 2

    def test_validator_rejects_untyped_sample(self):
        assert validate_exposition("ftl_orphan 1\n")

    def test_validator_rejects_missing_trailing_newline(self):
        errors = validate_exposition("# TYPE x counter\nx 1")
        assert any("newline" in e for e in errors)

    def test_validator_rejects_non_cumulative_histogram(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        assert any("cumulative" in e for e in validate_exposition(doc))

    def test_validator_rejects_missing_inf_bucket(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            "h_sum 0.05\n"
            "h_count 1\n"
        )
        assert any("+Inf" in e for e in validate_exposition(doc))

    def test_validator_rejects_inf_count_mismatch(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 0.05\n"
            "h_count 3\n"
        )
        assert any("_count" in e for e in validate_exposition(doc))

    def test_validator_rejects_garbage_lines(self):
        assert validate_exposition("not a metric line at all !!\n")

    def test_metrics_to_prometheus_round_trip(self):
        metrics = Metrics()
        metrics.inc("requests_total", 3)
        metrics.observe("request_link", 0.012)
        text = metrics.to_prometheus(gauges={"queue_depth": 0})
        assert validate_exposition(text) == []
        assert "ftl_requests_total 3" in text


# ----------------------------------------------------------------------
# Client retry policy (satellite bugfix)
# ----------------------------------------------------------------------
class _FakeResponse:
    def __init__(self, status=200, body=b'{"ok": true}'):
        self.status = status
        self._body = body

    def read(self):
        return self._body


class _FakeConnection:
    """Scripted transport: fail on connect / on the n-th request."""

    def __init__(self, fail_connect=False, fail_requests_at=()):
        self.fail_connect = fail_connect
        self.fail_requests_at = set(fail_requests_at)
        self.requests = []
        self.closed = False

    def connect(self):
        if self.fail_connect:
            raise ConnectionRefusedError("connection refused")

    def request(self, method, path, body=None, headers=None):
        self.requests.append((method, path, body))
        if len(self.requests) in self.fail_requests_at:
            raise ConnectionResetError("connection reset")

    def getresponse(self):
        return _FakeResponse()

    def close(self):
        self.closed = True


class _FakeFactory:
    def __init__(self, connections):
        self._connections = list(connections)
        self.n_created = 0

    def __call__(self, host, port, timeout=None):
        self.n_created += 1
        return self._connections.pop(0)


def _client(factory, **kwargs):
    sleeps = []
    client = ServiceClient(
        "127.0.0.1",
        1,
        sleep=sleeps.append,
        connection_factory=factory,
        **kwargs,
    )
    return client, sleeps


class TestClientRetries:
    def test_connect_failure_retried_for_idempotent_path(self):
        factory = _FakeFactory([
            _FakeConnection(fail_connect=True),
            _FakeConnection(),
        ])
        client, sleeps = _client(factory)
        assert client.request("GET", "/healthz") == {"ok": True}
        assert factory.n_created == 2
        assert sleeps == [0.05]

    def test_backoff_doubles_per_retry(self):
        factory = _FakeFactory([
            _FakeConnection(fail_connect=True),
            _FakeConnection(fail_connect=True),
            _FakeConnection(),
        ])
        client, sleeps = _client(factory)
        assert client.request("GET", "/metrics?format=json") == {"ok": True}
        assert sleeps == [0.05, 0.10]

    def test_connect_failure_not_retried_for_ingest(self):
        factory = _FakeFactory([
            _FakeConnection(fail_connect=True),
            _FakeConnection(),
        ])
        client, sleeps = _client(factory)
        with pytest.raises(ConnectionRefusedError):
            client.request("POST", "/ingest", {"session": "s"})
        assert factory.n_created == 1
        assert sleeps == []

    def test_post_send_failure_on_fresh_connection_never_retried(self):
        # The request went out on a brand-new connection: the server may
        # have processed it, so even idempotent paths must not replay
        # blindly (only reused keep-alive sockets get that grace).
        factory = _FakeFactory([
            _FakeConnection(fail_requests_at=(1,)),
            _FakeConnection(),
        ])
        client, sleeps = _client(factory)
        with pytest.raises(ConnectionResetError):
            client.request("POST", "/link", {"query": {}})
        assert factory.n_created == 1
        assert sleeps == []

    def test_stale_keepalive_retried_for_idempotent_path(self):
        stale = _FakeConnection(fail_requests_at=(2,))
        fresh = _FakeConnection()
        factory = _FakeFactory([stale, fresh])
        client, sleeps = _client(factory)
        assert client.request("POST", "/link", {"query": {}}) == {"ok": True}
        # Second call reuses the kept-alive socket, which dies mid-send.
        assert client.request("POST", "/link", {"query": {}}) == {"ok": True}
        assert stale.closed
        assert factory.n_created == 2
        assert len(fresh.requests) == 1
        assert sleeps == [0.05]

    def test_stale_keepalive_failure_not_retried_for_ingest(self):
        stale = _FakeConnection(fail_requests_at=(2,))
        factory = _FakeFactory([stale, _FakeConnection()])
        client, _sleeps = _client(factory)
        assert client.request("POST", "/ingest", {"session": "s"}) == {"ok": True}
        with pytest.raises(ConnectionResetError):
            client.request("POST", "/ingest", {"session": "s"})
        assert factory.n_created == 1

    def test_retry_budget_exhausted_raises(self):
        factory = _FakeFactory([
            _FakeConnection(fail_connect=True),
            _FakeConnection(fail_connect=True),
        ])
        client, sleeps = _client(factory, max_retries=1)
        with pytest.raises(ConnectionRefusedError):
            client.request("GET", "/healthz")
        assert factory.n_created == 2
        assert sleeps == [0.05]

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValidationError):
            ServiceClient("127.0.0.1", 1, max_retries=-1)


# ----------------------------------------------------------------------
# End to end against a live daemon
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def obs_server(fitted_models, small_pair):
    mr, ma = fitted_models
    engine = LinkEngine(mr, ma, options=RANKING)
    pool = list(small_pair.q_db)
    config = ServerConfig(port=0, max_wait_ms=1.0)
    with BackgroundServer(engine, pool, config=config) as background:
        yield background


@pytest.fixture(scope="module")
def obs_queries(small_pair):
    ids = sorted(small_pair.truth)[:2]
    return [small_pair.p_db[qid] for qid in ids]


class TestEndToEndObservability:
    def test_link_response_trace_id_appears_in_log(
        self, obs_server, obs_queries
    ):
        from repro.service.protocol import trajectory_to_wire

        stream = io.StringIO()
        handler = obs.configure_json_logging(stream=stream)
        try:
            with ServiceClient(*obs_server.address) as client:
                body = client.link_raw(
                    {"query": trajectory_to_wire(obs_queries[0])}
                )
        finally:
            logging.getLogger("ftl").removeHandler(handler)
        trace_id = body.get("trace_id")
        assert trace_id, "/link response must carry a trace ID"
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        request_events = [
            e
            for e in events
            if e["event"] == "request" and e.get("trace_id") == trace_id
        ]
        assert request_events, (
            f"no structured request log carried trace ID {trace_id}"
        )
        assert request_events[0]["path"] == "/v1/link"
        assert request_events[0]["status"] == 200
        batch_events = [
            e
            for e in events
            if e["event"] == "batch" and trace_id in e.get("trace_ids", ())
        ]
        assert batch_events, "batch log must list the member trace IDs"

    def test_error_response_also_carries_trace_id(self, obs_server):
        with ServiceClient(*obs_server.address) as client:
            with pytest.raises(RemoteServiceError) as exc:
                client.request("GET", "/nope")
        assert exc.value.payload.get("trace_id")

    def test_metrics_default_is_valid_prometheus(self, obs_server, obs_queries):
        with ServiceClient(*obs_server.address) as client:
            client.link(obs_queries[0])
            text = client.metrics_text()
        assert validate_exposition(text) == [], validate_exposition(text)
        for stage in STAGES:
            assert f"# TYPE ftl_stage_{stage}_seconds histogram" in text, (
                f"stage histogram {stage} missing from /metrics"
            )
        # Serving work actually landed in the stage timers.
        assert "ftl_stage_profile_seconds_count 0" not in text
        assert "ftl_stage_queue_wait_seconds_count 0" not in text
        assert "ftl_queue_depth" in text

    def test_metrics_json_format_preserved(self, obs_server):
        with ServiceClient(*obs_server.address) as client:
            metrics = client.metrics()
        assert metrics["counters"]["requests_total"] >= 1
        assert "latency" in metrics
        assert metrics["queue_depth"] == 0

    def test_unknown_metrics_format_is_structured_error(self, obs_server):
        with ServiceClient(*obs_server.address) as client:
            with pytest.raises(RemoteServiceError) as exc:
                client.request("GET", "/metrics?format=yaml")
        assert exc.value.status == 400

    def test_spans_disabled_leaves_stage_histograms_empty(
        self, fitted_models, small_pair, obs_queries
    ):
        mr, ma = fitted_models
        engine = LinkEngine(mr, ma, options=RANKING)
        pool = list(small_pair.q_db)
        config = ServerConfig(port=0, max_wait_ms=1.0, spans=False)
        with BackgroundServer(engine, pool, config=config) as background:
            with ServiceClient(*background.address) as client:
                client.link(obs_queries[0])
                text = client.metrics_text()
        assert validate_exposition(text) == []
        # queue_wait is measured by the batcher itself (not a span), so
        # it still populates; the engine-side stages must stay empty.
        assert "ftl_stage_profile_seconds_count 0" in text
        assert "ftl_stage_rank_seconds_count 0" in text

    def test_stage_histograms_preregistered_in_state(self, fitted_models):
        mr, ma = fitted_models
        engine = LinkEngine(mr, ma, options=RANKING)
        state = ServiceState(engine=engine, pool=[], options=RANKING)
        latency = state.metrics.to_dict()["latency"]
        for stage in STAGES:
            assert STAGE_METRIC_PREFIX + stage in latency
