"""The sparse global assignment subsystem (`repro.assign`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign import (
    PERMISSIVE_LINK_OPTIONS,
    CostGraph,
    build_cost_graph,
    evaluate_assignment,
    graph_from_link_results,
    independent_top1,
    resolve_backend,
    scipy_available,
    solve,
    split_components,
)
from repro.config import FTLConfig
from repro.core.engine import LinkEngine, LinkOptions
from repro.errors import ValidationError
from repro.store.stindex import SpatioTemporalIndex


def make_graph(edges, n_q=None, n_c=None):
    """A CostGraph over integer-labelled queries/candidates."""
    n_q = n_q if n_q is not None else max((e[0] for e in edges), default=-1) + 1
    n_c = n_c if n_c is not None else max((e[1] for e in edges), default=-1) + 1
    return CostGraph(
        query_ids=tuple(f"q{i}" for i in range(n_q)),
        candidate_ids=tuple(f"c{i}" for i in range(n_c)),
        edges=tuple(sorted(edges, key=lambda e: (e[0], e[1]))),
        min_score=0.0,
        n_scored_pairs=n_q * n_c,
    )


def brute_force_max_weight(n_q, n_c, edges):
    """Exact maximum-weight matching total by bitmask DP (n_c <= 16)."""
    from functools import lru_cache

    by_q = {qi: [] for qi in range(n_q)}
    for qi, ci, score in edges:
        by_q[qi].append((ci, score))

    @lru_cache(maxsize=None)
    def best(qi: int, used: int) -> float:
        if qi == n_q:
            return 0.0
        out = best(qi + 1, used)
        for ci, score in by_q[qi]:
            if not used >> ci & 1:
                out = max(out, score + best(qi + 1, used | (1 << ci)))
        return out

    return best(0, 0)


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
class TestComponents:
    def test_disjoint_edges_split(self):
        graph = make_graph([(0, 0, 0.9), (1, 0, 0.8), (2, 2, 0.5)], n_c=3)
        comps = split_components(graph)
        assert [(c.query_indices, c.candidate_indices) for c in comps] == [
            ((0, 1), (0,)),
            ((2,), (2,)),
        ]

    def test_chain_merges_into_one(self):
        # q0-c0, q1-c0, q1-c1, q2-c1: all one component via shared nodes.
        graph = make_graph(
            [(0, 0, 0.5), (1, 0, 0.5), (1, 1, 0.5), (2, 1, 0.5)]
        )
        comps = split_components(graph)
        assert len(comps) == 1
        assert comps[0].query_indices == (0, 1, 2)

    def test_isolated_nodes_in_no_component(self):
        graph = make_graph([(0, 0, 0.9)], n_q=5, n_c=5)
        comps = split_components(graph)
        assert len(comps) == 1
        assert comps[0].query_indices == (0,)

    def test_empty_graph(self):
        assert split_components(make_graph([], n_q=3, n_c=3)) == []


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
class TestSolvers:
    def test_backend_resolution(self):
        assert resolve_backend("greedy") == "greedy"
        assert resolve_backend("reference") == "reference"
        with pytest.raises(ValidationError):
            resolve_backend("simplex")

    def test_auto_prefers_sparse_with_scipy(self):
        if scipy_available():
            assert resolve_backend("auto") == "sparse"

    def test_no_scipy_env_forces_greedy_fallback(self, monkeypatch):
        monkeypatch.setenv("FTL_NO_SCIPY", "1")
        assert not scipy_available()
        assert resolve_backend("auto") == "greedy"
        with pytest.raises(ValidationError):
            resolve_backend("sparse")
        graph = make_graph([(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.7)])
        assert solve(graph).backend == "greedy"

    def test_exact_beats_greedy_on_conflict(self):
        # Greedy grabs (q0, c0) and strands q1; exact swaps.
        graph = make_graph([(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.85)])
        exact = solve(graph, backend="reference")
        assert exact.pairs == {"q0": "c1", "q1": "c0"}
        greedy = solve(graph, backend="greedy")
        assert greedy.pairs == {"q0": "c0"}
        assert exact.total_score > greedy.total_score

    def test_greedy_tie_break_is_index_order(self):
        # Equal scores: lowest (query_index, candidate_index) wins.
        graph = make_graph([(0, 1, 0.5), (0, 0, 0.5), (1, 0, 0.5)])
        result = solve(graph, backend="greedy")
        assert result.pairs == {"q0": "c0"}

    def test_deterministic_across_runs(self):
        rng = np.random.default_rng(7)
        edges = [
            (qi, ci, float(rng.uniform(0.1, 1.0)))
            for qi in range(12)
            for ci in range(12)
            if rng.random() < 0.3
        ]
        graph = make_graph(edges, n_q=12, n_c=12)
        for backend in ("greedy", "reference") + (
            ("sparse",) if scipy_available() else ()
        ):
            first = solve(graph, backend=backend)
            second = solve(graph, backend=backend)
            assert first.pairs == second.pairs
            assert first.total_score == second.total_score

    @pytest.mark.skipif(not scipy_available(), reason="needs scipy")
    def test_sparse_matches_reference_bit_for_bit(self):
        """Satellite parity pin: same pairs, same scores, same totals."""
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n_q, n_c = rng.integers(1, 25, size=2)
            edges = [
                (qi, ci, float(rng.uniform(0.05, 1.0)))
                for qi in range(n_q)
                for ci in range(n_c)
                if rng.random() < 0.2
            ]
            graph = make_graph(edges, n_q=n_q, n_c=n_c)
            sparse = solve(graph, backend="sparse")
            reference = solve(graph, backend="reference")
            assert sparse.pairs == reference.pairs
            assert dict(sparse.scores) == dict(reference.scores)
            assert sparse.total_score == reference.total_score
            assert sparse.n_components == reference.n_components

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_componentwise_solve_equals_brute_force(self, data):
        """Sparse (and reference) totals equal brute-force max weight."""
        n_q = data.draw(st.integers(1, 8), label="n_q")
        n_c = data.draw(st.integers(1, 8), label="n_c")
        cells = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, n_q - 1),
                    st.integers(0, n_c - 1),
                    st.integers(1, 100),
                ),
                max_size=24,
                unique_by=lambda t: (t[0], t[1]),
            ),
            label="edges",
        )
        edges = [(qi, ci, s / 100.0) for qi, ci, s in cells]
        graph = make_graph(edges, n_q=n_q, n_c=n_c)
        want = brute_force_max_weight(n_q, n_c, edges)
        backends = ["reference"] + (["sparse"] if scipy_available() else [])
        for backend in backends:
            got = solve(graph, backend=backend)
            assert got.total_score == pytest.approx(want, abs=1e-9)
        greedy = solve(graph, backend="greedy")
        assert greedy.total_score <= want + 1e-9

    def test_result_shape_and_accuracy(self):
        graph = make_graph([(0, 0, 0.9), (1, 1, 0.8)])
        result = solve(graph, backend="greedy")
        assert len(result) == 2
        assert result.scores == {"q0": 0.9, "q1": 0.8}
        assert result.unassigned(graph.query_ids) == []
        assert result.accuracy({"q0": "c0", "q1": "c9"}) == 0.5
        wire = result.to_dict()
        assert wire["total_score"] == pytest.approx(1.7)
        assert {m["query_id"] for m in wire["matches"]} == {"q0", "q1"}


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
class TestGraphConstruction:
    @pytest.fixture(scope="class")
    def engine(self, fitted_models):
        mr, ma = fitted_models
        return LinkEngine(mr, ma, options=PERMISSIVE_LINK_OPTIONS)

    def test_graph_edges_match_engine_scores(
        self, engine, small_pair
    ):
        queries = [small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:5]]
        pool = list(small_pair.q_db)
        graph = build_cost_graph(engine, queries, pool, min_score=1e-6)
        assert graph.query_ids == tuple(q.traj_id for q in queries)
        assert graph.candidate_ids == tuple(t.traj_id for t in pool)
        by_query = {}
        for qid, cid, score in graph.triples():
            by_query.setdefault(qid, {})[cid] = score
        for query in queries:
            expected = {
                c.candidate_id: c.score
                for c in engine.link(query, pool).candidates
                if c.score > 1e-6
            }
            assert by_query.get(query.traj_id, {}) == expected

    def test_edges_canonically_sorted(self, engine, small_pair):
        queries = [small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:5]]
        graph = build_cost_graph(engine, queries, list(small_pair.q_db))
        assert list(graph.edges) == sorted(
            graph.edges, key=lambda e: (e[0], e[1])
        )

    def test_top_k_is_forced_off(self, engine, small_pair):
        queries = [small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:3]]
        pool = list(small_pair.q_db)
        truncated = build_cost_graph(
            engine,
            queries,
            pool,
            options=PERMISSIVE_LINK_OPTIONS.with_updates(top_k=1),
        )
        full = build_cost_graph(engine, queries, pool)
        assert truncated.edges == full.edges

    def test_blocked_graph_is_edge_subset_with_equal_scores(
        self, engine, small_pair, config
    ):
        queries = [small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:5]]
        pool = list(small_pair.q_db)
        index = SpatioTemporalIndex.build(
            small_pair.q_db,
            vmax_kph=config.vmax_kph,
            reach_gap_s=config.horizon_s,
        )
        dense = build_cost_graph(engine, queries, pool)
        blocked = build_cost_graph(engine, queries, blocking=index)
        dense_scores = dict(
            ((q, c), s) for q, c, s in dense.triples()
        )
        blocked_scores = dict(
            ((q, c), s) for q, c, s in blocked.triples()
        )
        assert set(blocked_scores) <= set(dense_scores)
        for key, score in blocked_scores.items():
            assert score == dense_scores[key]

    def test_validation(self, engine, small_pair):
        queries = [small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:2]]
        with pytest.raises(ValidationError):
            build_cost_graph(engine, queries)  # no pool, no blocking
        with pytest.raises(ValidationError):
            build_cost_graph(
                engine, queries, list(small_pair.q_db), min_score=-0.5
            )
        with pytest.raises(ValidationError):
            build_cost_graph(
                engine, queries + [queries[0]], list(small_pair.q_db)
            )

    def test_graph_from_results_rejects_mismatch(self):
        with pytest.raises(ValidationError):
            graph_from_link_results([], ["q0"], ["c0"], 0.0, 0)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
class TestEvaluation:
    def test_independent_top1_uses_ranking_key(self):
        graph = make_graph([(0, 2, 0.5), (0, 1, 0.5), (0, 0, 0.4)], n_c=3)
        # Tie on score: lowest candidate index wins (engine pool order).
        assert independent_top1(graph) == {"q0": "c1"}

    def test_assignment_not_worse_than_independent_on_catalog(self):
        from repro.datasets.catalog import build_scenario

        pair = build_scenario("SB-mini")
        evaluation = evaluate_assignment(
            pair, FTLConfig(), np.random.default_rng(0)
        )
        assert (
            evaluation.precision_assignment
            >= evaluation.precision_independent
        )
        assert evaluation.precision_assignment >= 0.9

    def test_report_shape(self, small_pair, config):
        evaluation = evaluate_assignment(
            small_pair, config, np.random.default_rng(1), use_blocking=False
        )
        report = evaluation.to_dict()
        assert report["n_queries"] == len(small_pair.p_db)
        assert 0.0 <= report["density"] <= 1.0
        assert set(report["precision_at_1"]) == {"independent", "assignment"}
        assert evaluation.assignment.accuracy(small_pair.truth) >= 0.8


# ----------------------------------------------------------------------
# Bench smoke
# ----------------------------------------------------------------------
class TestBenchSmoke:
    def test_assign_bench_smoke(self, tmp_path):
        """Tiny run of the assignment benchmark, emitting BENCH_assign.json."""
        import json

        from benchmarks.bench_assign import run_assign_benchmark

        out = tmp_path / "BENCH_assign.json"
        report = run_assign_benchmark(
            solver_pool=96, legacy_pool=48, scenario="SB-mini",
            repeats=1, seed=3, out_path=out,
        )
        written = json.loads(out.read_text())
        assert written["solver"]["matchings_identical"]
        assert written["solver"]["density"] < 0.15
        assert written["legacy"]["total_scores_match"]
        p = report["scenario"]["precision_at_1"]
        assert p["assignment"] >= p["independent"]
