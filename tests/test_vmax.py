"""Learning Vmax from data."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.core.trajectory import Trajectory
from repro.core.vmax import learn_vmax
from repro.errors import ValidationError
from repro.geo.units import kph_to_mps


def constant_speed_db(speed_kph, n_traj=5, n_rec=50, gap_s=300.0):
    """Trajectories moving at exactly the given speed."""
    step = kph_to_mps(speed_kph) * gap_s
    trajs = []
    for i in range(n_traj):
        ts = gap_s * np.arange(n_rec)
        xs = step * np.arange(n_rec)
        trajs.append(Trajectory(ts, xs, np.zeros(n_rec), i))
    return TrajectoryDatabase(trajs)


class TestLearnVmax:
    def test_constant_speed_recovered(self):
        db = constant_speed_db(60.0)
        estimate = learn_vmax([db], margin=1.0)
        assert estimate.quantile_kph == pytest.approx(60.0, rel=1e-6)
        assert estimate.vmax_kph == pytest.approx(60.0, rel=1e-6)

    def test_margin_inflates(self):
        db = constant_speed_db(60.0)
        estimate = learn_vmax([db], margin=2.0)
        assert estimate.vmax_kph == pytest.approx(120.0, rel=1e-6)

    def test_quantile_robust_to_outliers(self):
        db = constant_speed_db(50.0, n_traj=10, n_rec=100)
        # One teleporting glitch record in one trajectory.
        glitch = Trajectory(
            [0.0, 300.0], [0.0, 5e6], [0.0, 0.0], "glitch"
        )
        db.add(glitch)
        estimate = learn_vmax([db], quantile=0.99, margin=1.0)
        assert estimate.quantile_kph < 100.0  # glitch did not dominate

    def test_short_gaps_excluded(self):
        # Noise spike over a 1-second gap must not inflate the estimate.
        spike = Trajectory([0.0, 1.0, 301.0], [0.0, 500.0, 600.0],
                           [0.0, 0.0, 0.0], "s")
        db = constant_speed_db(40.0)
        db.add(spike)
        estimate = learn_vmax([db], min_gap_s=120.0, margin=1.0)
        assert estimate.quantile_kph < 60.0

    def test_counts_segments(self):
        db = constant_speed_db(60.0, n_traj=3, n_rec=10)
        estimate = learn_vmax([db])
        assert estimate.n_segments == 27

    def test_pools_across_databases(self):
        slow = constant_speed_db(30.0)
        fast = constant_speed_db(90.0)
        estimate = learn_vmax([slow, fast], quantile=0.99, margin=1.0)
        assert estimate.quantile_kph == pytest.approx(90.0, rel=1e-3)

    def test_learned_cap_covers_synthetic_movement(self, small_pair):
        # The simulator drives taxis at <= 70 kph; the learnt loose cap
        # must cover that but not be absurd.
        estimate = learn_vmax([small_pair.p_db, small_pair.q_db])
        assert 40.0 < estimate.vmax_kph < 400.0

    def test_as_config(self):
        db = constant_speed_db(60.0)
        estimate = learn_vmax([db], margin=1.5)
        config = estimate.as_config(FTLConfig(time_unit_s=30.0))
        assert config.vmax_kph == pytest.approx(90.0, rel=1e-6)
        assert config.time_unit_s == 30.0

    def test_validation(self):
        db = constant_speed_db(60.0)
        with pytest.raises(ValidationError):
            learn_vmax([db], quantile=0.3)
        with pytest.raises(ValidationError):
            learn_vmax([db], margin=0.5)
        with pytest.raises(ValidationError):
            learn_vmax([db], min_gap_s=-1.0)

    def test_no_data_rejected(self):
        empty = TrajectoryDatabase()
        with pytest.raises(ValidationError):
            learn_vmax([empty])

    def test_stationary_data_rejected(self):
        n = 10
        still = Trajectory(300.0 * np.arange(n), np.zeros(n), np.zeros(n), "x")
        with pytest.raises(ValidationError):
            learn_vmax([TrajectoryDatabase([still])])
