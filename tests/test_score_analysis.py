"""Score-distribution analysis (AUC, separation)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.config import FTLConfig
from repro.errors import ValidationError
from repro.pipeline.experiment import collect_evidence, fit_model_pair
from repro.pipeline.score_analysis import (
    auc_from_scores,
    format_separation,
    separation_from_evidence,
)


class TestAuc:
    def test_perfect_separation(self):
        assert auc_from_scores(np.array([3.0, 4.0]), np.array([1.0, 2.0])) == 1.0

    def test_perfectly_wrong(self):
        assert auc_from_scores(np.array([1.0]), np.array([2.0, 3.0])) == 0.0

    def test_chance(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 3000)
        b = rng.normal(0, 1, 3000)
        assert auc_from_scores(a, b) == pytest.approx(0.5, abs=0.03)

    def test_ties_give_half_credit(self):
        assert auc_from_scores(np.array([1.0]), np.array([1.0])) == 0.5

    def test_matches_scipy_mannwhitney(self):
        rng = np.random.default_rng(1)
        a = rng.normal(1, 1, 80)
        b = rng.normal(0, 1, 120)
        u_stat, _p = sps.mannwhitneyu(a, b, alternative="two-sided")
        expected = u_stat / (len(a) * len(b))
        assert auc_from_scores(a, b) == pytest.approx(expected, abs=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            auc_from_scores(np.array([]), np.array([1.0]))


class TestSeparation:
    @pytest.fixture(scope="class")
    def evidence(self, small_pair):
        rng = np.random.default_rng(0)
        config = FTLConfig()
        mr, ma = fit_model_pair(small_pair, config, rng)
        qids = small_pair.sample_queries(10, rng)
        return small_pair, collect_evidence(small_pair, qids, mr, ma)

    def test_eq2_scores_separate_well(self, evidence):
        pair, ev = evidence
        sep = separation_from_evidence(ev, pair.truth, statistic="score")
        assert sep.auc > 0.9
        assert sep.medians_ordered
        assert sep.n_true == 10
        assert sep.n_false == 10 * (len(pair.q_db) - 1)

    def test_llr_separates_well(self, evidence):
        pair, ev = evidence
        sep = separation_from_evidence(ev, pair.truth, statistic="llr")
        assert sep.auc > 0.9

    def test_unknown_statistic(self, evidence):
        pair, ev = evidence
        with pytest.raises(ValidationError):
            separation_from_evidence(ev, pair.truth, statistic="magic")

    def test_format(self, evidence):
        pair, ev = evidence
        sep = separation_from_evidence(ev, pair.truth)
        text = format_separation({"small": sep})
        assert "AUC" in text and "small" in text
