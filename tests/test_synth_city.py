"""City model, POIs and towers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.bbox import BoundingBox
from repro.synth.city import CityModel
from repro.synth.pois import generate_pois, generate_tower_grid


class TestPois:
    def test_count_and_bounds(self, rng):
        bbox = BoundingBox.from_size(10_000, 5_000)
        pois = generate_pois(bbox, 50, rng)
        assert pois.shape == (50, 2)
        assert bbox.contains_many(pois[:, 0], pois[:, 1]).all()

    def test_clustering_reduces_spread(self, rng):
        # A single tight cluster is far more concentrated than uniform.
        bbox = BoundingBox.from_size(100_000, 100_000)
        clustered = generate_pois(bbox, 300, rng, n_clusters=1,
                                  cluster_std_fraction=0.01)
        uniform = bbox.sample(rng, 300)
        assert clustered.std(axis=0).mean() < uniform.std(axis=0).mean()

    def test_validation(self, rng):
        bbox = BoundingBox.from_size(100, 100)
        with pytest.raises(ValidationError):
            generate_pois(bbox, 0, rng)
        with pytest.raises(ValidationError):
            generate_pois(bbox, 5, rng, n_clusters=0)
        with pytest.raises(ValidationError):
            generate_pois(bbox, 5, rng, cluster_std_fraction=2.0)


class TestTowerGrid:
    def test_covers_box(self, rng):
        bbox = BoundingBox.from_size(10_000, 10_000)
        towers = generate_tower_grid(bbox, 1000.0, rng)
        assert towers.shape[0] == 100
        assert bbox.contains_many(towers[:, 0], towers[:, 1]).all()

    def test_no_jitter_regular(self, rng):
        bbox = BoundingBox.from_size(4000, 4000)
        towers = generate_tower_grid(bbox, 2000.0, rng, jitter_fraction=0.0)
        xs = sorted(set(towers[:, 0]))
        assert xs == [1000.0, 3000.0]

    def test_validation(self, rng):
        bbox = BoundingBox.from_size(100, 100)
        with pytest.raises(ValidationError):
            generate_tower_grid(bbox, 0.0, rng)
        with pytest.raises(ValidationError):
            generate_tower_grid(bbox, 10.0, rng, jitter_fraction=0.6)


class TestCityModel:
    def test_generate_defaults(self, rng):
        city = CityModel.generate(rng)
        assert city.n_pois == 120
        assert city.bbox.width == 45_000.0
        assert city.diameter_m == pytest.approx(np.hypot(45_000, 25_000))

    def test_random_poi_is_a_poi(self, rng):
        city = CityModel.generate(rng, n_pois=10)
        poi = city.random_poi(rng)
        match = np.isclose(city.pois[:, 0], poi[0]) & np.isclose(
            city.pois[:, 1], poi[1]
        )
        assert match.any()

    def test_random_poi_indices(self, rng):
        city = CityModel.generate(rng, n_pois=10)
        idx = city.random_poi_indices(rng, 100)
        assert idx.shape == (100,)
        assert idx.min() >= 0 and idx.max() < 10

    def test_nearest_tower_is_nearest(self, rng):
        city = CityModel.generate(rng, width_m=10_000, height_m=10_000,
                                  tower_spacing_m=2_000)
        x, y = 3333.0, 7777.0
        got = city.nearest_tower(np.array([x]), np.array([y]))[0]
        dists = np.hypot(city.towers[:, 0] - x, city.towers[:, 1] - y)
        best = city.towers[np.argmin(dists)]
        assert np.allclose(got, best)

    def test_min_horizon(self, rng):
        city = CityModel.generate(rng)
        vmax = 120 / 3.6
        assert city.min_horizon_s(vmax) == pytest.approx(city.diameter_m / vmax)
        with pytest.raises(ValidationError):
            city.min_horizon_s(0.0)

    def test_default_horizon_covers_city(self, rng):
        # The library default (3600 s at 120 kph = 120 km reach) exceeds
        # the default city diameter, so beyond-horizon segments are
        # always compatible, as the models assume.
        city = CityModel.generate(rng)
        assert city.min_horizon_s(120 / 3.6) < 3600.0

    def test_constructor_validation(self, rng):
        bbox = BoundingBox.from_size(100, 100)
        with pytest.raises(ValidationError):
            CityModel(bbox, np.zeros((1, 2)), np.zeros((1, 2)))  # <2 POIs
        with pytest.raises(ValidationError):
            CityModel(bbox, np.zeros((5, 2)), np.zeros((0, 2)))  # no towers
