"""Transit lines and commuting-card taps."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.units import days_to_seconds, kph_to_mps
from repro.synth.city import CityModel
from repro.synth.noise import GaussianNoise
from repro.synth.observation import ObservationService
from repro.synth.roads import build_road_network
from repro.synth.transit import (
    TransitRoute,
    TransitSystem,
    build_transit_commuter,
    build_transit_system,
    make_transit_scenario,
)


@pytest.fixture(scope="module")
def module_city():
    return CityModel.generate(
        np.random.default_rng(1), width_m=20_000, height_m=12_000
    )


@pytest.fixture(scope="module")
def network(module_city):
    return build_road_network(module_city, np.random.default_rng(2))


@pytest.fixture(scope="module")
def transit(network):
    return build_transit_system(
        network, np.random.default_rng(3), n_routes=5, min_stops=5
    )


class TestBuildSystem:
    def test_route_count_and_stops(self, transit):
        assert len(transit) == 5
        assert all(r.n_stops >= 5 for r in transit.routes)

    def test_stops_are_road_nodes(self, transit, network):
        node_set = {tuple(p) for p in np.round(network.node_positions, 6)}
        for route in transit.routes:
            for stop in np.round(route.stops, 6):
                assert tuple(stop) in node_set

    def test_leg_times_match_geometry(self, transit):
        speed = kph_to_mps(35.0)
        for route in transit.routes:
            leg_m = np.hypot(
                np.diff(route.stops[:, 0]), np.diff(route.stops[:, 1])
            )
            assert np.allclose(route.leg_seconds, leg_m / speed)

    def test_validation(self, network):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            build_transit_system(network, rng, n_routes=0)
        with pytest.raises(ValidationError):
            build_transit_system(network, rng, min_stops=1)
        with pytest.raises(ValidationError):
            build_transit_system(network, rng, headway_s=0.0)

    def test_system_requires_routes(self):
        with pytest.raises(ValidationError):
            TransitSystem([])

    def test_route_lookup(self, transit):
        assert transit.route(0).route_id == 0
        with pytest.raises(ValidationError):
            transit.route(99)


class TestTimetable:
    @pytest.fixture
    def route(self):
        stops = np.array([[0.0, 0.0], [1000.0, 0.0], [2000.0, 0.0]])
        return TransitRoute(
            route_id=0,
            stops=stops,
            leg_seconds=np.array([100.0, 100.0]),
            headway_s=600.0,
            phase_s=60.0,
        )

    def test_first_departure(self, route):
        assert route.departure_after(0, 0.0) == 60.0

    def test_headway_grid(self, route):
        assert route.departure_after(0, 61.0) == 660.0
        assert route.departure_after(0, 660.0) == 660.0

    def test_downstream_offset(self, route):
        # Stop 1 is 100 s downstream of the first stop.
        assert route.departure_after(1, 0.0) == 160.0

    def test_nearest_stop(self, route):
        assert route.nearest_stop(900.0, 10.0) == 1

    def test_ride_times(self, route):
        assert list(route.ride_times(0, 2)) == [0.0, 100.0, 200.0]
        with pytest.raises(ValidationError):
            route.ride_times(2, 1)

    def test_departure_validation(self, route):
        with pytest.raises(ValidationError):
            route.departure_after(9, 0.0)


class TestCommuter:
    @pytest.fixture(scope="class")
    def commute(self, module_city, transit):
        return build_transit_commuter(
            module_city, transit, days_to_seconds(5), np.random.default_rng(4)
        )

    def test_path_monotone(self, commute):
        ts, _xs, _ys = commute.path.waypoints
        assert np.all(np.diff(ts) >= 0)

    def test_speed_bounded_by_bus(self, commute):
        assert commute.path.max_speed_mps() <= kph_to_mps(35.0) + 1e-6

    def test_taps_roughly_four_per_day(self, commute):
        # Two trips x (board + alight) per weekday.
        per_day = len(commute.taps) / 5
        assert 2.0 <= per_day <= 5.0

    def test_taps_lie_on_path(self, commute):
        for tap in commute.taps:
            xs, ys = commute.path.position_at(np.array([tap.t]))
            dist = float(np.hypot(xs[0] - tap.x, ys[0] - tap.y))
            assert dist < 1.0  # tapping exactly at the stop

    def test_tap_trajectory(self, commute):
        traj = commute.tap_trajectory("card1")
        assert traj.traj_id == "card1"
        assert len(traj) == len(commute.taps)

    def test_no_alight_taps_option(self, module_city, transit):
        commute = build_transit_commuter(
            module_city, transit, days_to_seconds(3),
            np.random.default_rng(5), tap_on_alight=False,
        )
        # Only boarding taps: about two per day.
        assert len(commute.taps) <= 3 * 3

    def test_validation(self, module_city, transit):
        with pytest.raises(ValidationError):
            build_transit_commuter(
                module_city, transit, 0.0, np.random.default_rng(0)
            )


class TestScenario:
    def test_links_end_to_end(self, module_city, transit):
        from repro.config import FTLConfig
        from repro.core.linker import FTLLinker

        rng = np.random.default_rng(6)
        cdr = ObservationService("CDR", 1.0, GaussianNoise(150.0))
        pair = make_transit_scenario(
            module_city, transit, 18, days_to_seconds(8), rng, cdr
        )
        assert pair.p_db.name == "card-taps"
        linker = FTLLinker(FTLConfig(), phi_r=0.2).fit(
            pair.p_db, pair.q_db, rng
        )
        qids = pair.sample_queries(min(12, len(pair.truth)), rng)
        hits = sum(
            1
            for pid in qids
            if linker.link(pair.p_db[pid]).contains(pair.truth[pid])
        )
        assert hits >= 8

    def test_validation(self, module_city, transit):
        rng = np.random.default_rng(0)
        cdr = ObservationService("CDR", 1.0)
        with pytest.raises(ValidationError):
            make_transit_scenario(
                module_city, transit, 0, days_to_seconds(1), rng, cdr
            )
