"""Linking-decision explanations."""

import pytest

from repro.core.explain import explain_pair
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def pair_and_models(small_pair, fitted_models):
    mr, ma = fitted_models
    pid = next(iter(small_pair.truth))
    qid = small_pair.truth[pid]
    other = next(q for q in small_pair.q_db.ids() if q != qid)
    return small_pair, mr, ma, pid, qid, other


class TestFaithfulness:
    def test_contributions_sum_to_matcher_llr(self, pair_and_models):
        pair, mr, ma, pid, qid, other = pair_and_models
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.5)
        for cid in (qid, other):
            explanation = explain_pair(
                pair.p_db[pid], pair.q_db[cid], mr, ma
            )
            decision = matcher.decide(pair.p_db[pid], pair.q_db[cid])
            matcher_llr = (
                decision.log_likelihood_rejection
                - decision.log_likelihood_acceptance
            )
            assert explanation.total_llr == pytest.approx(matcher_llr, abs=1e-9)
            assert explanation.n_mutual == decision.n_mutual
            assert explanation.n_incompatible == decision.n_incompatible

    def test_segment_sum_matches_total(self, pair_and_models):
        pair, mr, ma, pid, qid, _other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        assert sum(
            s.llr_contribution for s in explanation.segments
        ) == pytest.approx(explanation.total_llr, abs=1e-9)


class TestInterpretation:
    def test_true_pair_leans_same_person(self, pair_and_models):
        pair, mr, ma, pid, qid, other = pair_and_models
        true_expl = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        false_expl = explain_pair(pair.p_db[pid], pair.q_db[other], mr, ma)
        assert true_expl.total_llr > false_expl.total_llr

    def test_segments_sorted_by_magnitude(self, pair_and_models):
        pair, mr, ma, pid, qid, _other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        magnitudes = [abs(s.llr_contribution) for s in explanation.segments]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_supporting_opposing_partition(self, pair_and_models):
        pair, mr, ma, pid, _qid, other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[other], mr, ma)
        zero = [
            s for s in explanation.segments if s.llr_contribution == 0.0
        ]
        assert (
            len(explanation.supporting())
            + len(explanation.opposing())
            + len(zero)
            == len(explanation.segments)
        )

    def test_incompatible_segments_oppose_for_true_pairs(self, pair_and_models):
        # Under the fitted models, incompatible segments always argue
        # against the same-person hypothesis (p_r < p_a).
        pair, mr, ma, pid, qid, _other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        for segment in explanation.segments:
            if not segment.compatible and segment.prob_rejection < segment.prob_acceptance:
                assert segment.llr_contribution < 0

    def test_top_k(self, pair_and_models):
        pair, mr, ma, pid, qid, _other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        assert len(explanation.top(3)) == min(3, len(explanation.segments))
        with pytest.raises(ValidationError):
            explanation.top(-1)

    def test_summary_text(self, pair_and_models):
        pair, mr, ma, pid, qid, _other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        text = explanation.summary(3)
        assert "mutual segments" in text
        assert "nats" in text

    def test_describe_line(self, pair_and_models):
        pair, mr, ma, pid, qid, _other = pair_and_models
        explanation = explain_pair(pair.p_db[pid], pair.q_db[qid], mr, ma)
        if explanation.segments:
            line = explanation.segments[0].describe()
            assert "min" in line and "km" in line


class TestEdgeCases:
    def test_disjoint_pair_single_segment(self, fitted_models):
        from repro.core.trajectory import Trajectory

        mr, ma = fitted_models
        p = Trajectory([0.0, 60.0], [0.0, 10.0], [0.0, 0.0], "p")
        q = Trajectory([1e7, 1e7 + 60.0], [0.0, 10.0], [0.0, 0.0], "q")
        explanation = explain_pair(p, q, mr, ma)
        # The junction segment is far beyond the horizon: no evidence.
        assert explanation.n_mutual == 0
        assert explanation.total_llr == 0.0

    def test_empty_candidate(self, fitted_models):
        from repro.core.trajectory import Trajectory

        mr, ma = fitted_models
        p = Trajectory([0.0], [0.0], [0.0], "p")
        explanation = explain_pair(p, Trajectory.empty("q"), mr, ma)
        assert explanation.n_mutual == 0
