"""Poisson-Binomial distribution: all three backends."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.errors import ValidationError
from repro.stats.poisson_binomial import (
    PoissonBinomial,
    pb_cdf,
    pb_pmf,
    pb_pmf_batch,
    pb_sf,
)

probs_list = st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=0, max_size=15)


def brute_force_pmf(ps):
    """Enumerate all 2^n outcomes (n small)."""
    n = len(ps)
    pmf = np.zeros(n + 1)
    for mask in range(2**n):
        prob = 1.0
        k = 0
        for i in range(n):
            if mask >> i & 1:
                prob *= ps[i]
                k += 1
            else:
                prob *= 1 - ps[i]
        pmf[k] += prob
    return pmf


class TestDPBackend:
    def test_matches_binomial(self):
        pb = PoissonBinomial([0.3] * 12)
        expected = sps.binom.pmf(np.arange(13), 12, 0.3)
        assert np.allclose(pb.pmf(), expected)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        ps = rng.uniform(0, 1, 10)
        assert np.allclose(PoissonBinomial(ps).pmf(), brute_force_pmf(ps))

    def test_empty_is_point_mass_at_zero(self):
        pb = PoissonBinomial([])
        assert list(pb.pmf()) == [1.0]
        assert pb.cdf(0) == 1.0
        assert pb.sf(0) == 1.0
        assert pb.sf(1) == 0.0

    def test_certain_trials_shift_support(self):
        pb = PoissonBinomial([1.0, 1.0, 0.5])
        pmf = pb.pmf()
        assert pmf[0] == 0.0 and pmf[1] == 0.0
        assert pmf[2] == pytest.approx(0.5)
        assert pmf[3] == pytest.approx(0.5)

    def test_zero_trials_dropped(self):
        a = PoissonBinomial([0.0, 0.0, 0.4])
        assert a.pmf()[0] == pytest.approx(0.6)
        assert a.pmf().size == 4  # support still 0..3

    def test_mean_var(self):
        ps = [0.2, 0.5, 0.9]
        pb = PoissonBinomial(ps)
        assert pb.mean() == pytest.approx(sum(ps))
        assert pb.var() == pytest.approx(sum(p * (1 - p) for p in ps))
        assert pb.std() == pytest.approx(math.sqrt(pb.var()))

    def test_cdf_sf_complementary(self):
        ps = [0.1, 0.4, 0.7, 0.2]
        pb = PoissonBinomial(ps)
        for k in range(6):
            assert pb.cdf(k - 1) + pb.sf(k) == pytest.approx(1.0)

    def test_cdf_bounds(self):
        pb = PoissonBinomial([0.5, 0.5])
        assert pb.cdf(-1) == 0.0
        assert pb.cdf(5) == 1.0
        assert pb.sf(0) == 1.0
        assert pb.sf(3) == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            PoissonBinomial([1.2])
        with pytest.raises(ValidationError):
            PoissonBinomial([-0.1])
        with pytest.raises(ValidationError):
            PoissonBinomial([np.nan])
        with pytest.raises(ValidationError):
            PoissonBinomial([0.5], backend="bogus")


class TestRecursiveBackend:
    """The paper's Equation (1)."""

    def test_matches_dp_random(self):
        rng = np.random.default_rng(1)
        ps = rng.uniform(0.01, 0.9, 12)
        dp = PoissonBinomial(ps, backend="dp").pmf()
        rec = PoissonBinomial(ps, backend="recursive").pmf()
        assert np.allclose(dp, rec, atol=1e-9)

    def test_matches_dp_small_probs(self):
        # The FTL regime: many tiny rejection-model probabilities.
        ps = np.full(20, 0.01)
        dp = PoissonBinomial(ps, backend="dp").pmf()
        rec = PoissonBinomial(ps, backend="recursive").pmf()
        assert np.allclose(dp, rec, atol=1e-9)

    def test_certain_trial_handled_by_factoring(self):
        # p == 1 trials are factored out before Eq. 1 runs.
        pb = PoissonBinomial([1.0, 0.3], backend="recursive")
        assert pb.pmf()[0] == 0.0
        assert pb.pmf()[1] == pytest.approx(0.7)

    def test_pmf_sums_to_one(self):
        rng = np.random.default_rng(2)
        ps = rng.uniform(0, 0.99, 15)
        assert PoissonBinomial(ps, backend="recursive").pmf().sum() == pytest.approx(1.0)


class TestNormalBackend:
    def test_close_to_exact_for_large_n(self):
        rng = np.random.default_rng(3)
        ps = rng.uniform(0.05, 0.6, 300)
        exact = PoissonBinomial(ps, backend="dp")
        approx = PoissonBinomial(ps, backend="normal")
        for k in (50, 80, 100, 120, 150):
            assert approx.cdf(k) == pytest.approx(exact.cdf(k), abs=5e-3)
            assert approx.sf(k) == pytest.approx(exact.sf(k), abs=5e-3)

    def test_degenerate_all_certain(self):
        pb = PoissonBinomial([1.0, 1.0], backend="normal")
        assert pb.cdf(1) == 0.0
        assert pb.cdf(2) == 1.0

    def test_pmf_normalised(self):
        ps = np.full(50, 0.3)
        pmf = PoissonBinomial(ps, backend="normal").pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)


class TestSampling:
    def test_sample_mean_matches(self):
        rng = np.random.default_rng(4)
        ps = [0.2, 0.5, 0.8]
        pb = PoissonBinomial(ps)
        draws = pb.sample(rng, 20_000)
        assert draws.mean() == pytest.approx(pb.mean(), abs=0.03)

    def test_sample_with_certain_trials(self):
        rng = np.random.default_rng(4)
        pb = PoissonBinomial([1.0, 0.0])
        assert set(pb.sample(rng, 100)) == {1}

    def test_negative_size_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            PoissonBinomial([0.5]).sample(rng, -1)


class TestFunctionalAPI:
    def test_pb_pmf(self):
        assert pb_pmf([0.5]).tolist() == [0.5, 0.5]

    def test_pb_cdf_sf(self):
        assert pb_cdf([0.5, 0.5], 1) == pytest.approx(0.75)
        assert pb_sf([0.5, 0.5], 1) == pytest.approx(0.75)


class TestProperties:
    @given(probs_list)
    @settings(max_examples=60, deadline=None)
    def test_pmf_is_distribution(self, ps):
        pmf = PoissonBinomial(ps).pmf()
        assert pmf.size == len(ps) + 1
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)

    @given(probs_list)
    @settings(max_examples=60, deadline=None)
    def test_mean_matches_pmf(self, ps):
        pb = PoissonBinomial(ps)
        pmf = pb.pmf()
        assert (pmf * np.arange(pmf.size)).sum() == pytest.approx(
            pb.mean(), abs=1e-9
        )

    @given(st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_cdf_monotone(self, ps):
        pb = PoissonBinomial(ps)
        cdfs = [pb.cdf(k) for k in range(len(ps) + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))

    @given(st.lists(st.floats(0.001, 0.9), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_recursive_agrees_with_dp(self, ps):
        # Restricted to p <= 0.9: Eq. 1's alternating sum loses precision
        # when any odds p/(1-p) is large (see the backend ablation bench,
        # which quantifies exactly this fragility).
        dp = PoissonBinomial(ps, backend="dp").pmf()
        rec = PoissonBinomial(ps, backend="recursive").pmf()
        assert np.allclose(dp, rec, atol=1e-7)


class TestBatchPmf:
    """pb_pmf_batch must be bit-identical to the per-array dp path."""

    @given(
        st.lists(
            st.lists(st.floats(0.0, 1.0, allow_nan=False), max_size=12),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bitwise_equal_to_scalar(self, ps_lists):
        batch = pb_pmf_batch(ps_lists)
        assert len(batch) == len(ps_lists)
        for ps, got in zip(ps_lists, batch):
            want = pb_pmf(ps)
            assert got.shape == want.shape
            assert np.array_equal(got, want)  # exact, not allclose

    def test_empty_batch(self):
        assert pb_pmf_batch([]) == []

    def test_degenerate_trials(self):
        batch = pb_pmf_batch([[0.0, 1.0, 0.5], [1.0, 1.0], [0.0], []])
        for ps, got in zip([[0.0, 1.0, 0.5], [1.0, 1.0], [0.0], []], batch):
            assert np.array_equal(got, pb_pmf(ps))

    def test_non_dp_backend_falls_back(self):
        ps_lists = [[0.2, 0.4], [0.1]]
        batch = pb_pmf_batch(ps_lists, backend="normal")
        for ps, got in zip(ps_lists, batch):
            assert np.array_equal(got, pb_pmf(ps, backend="normal"))

    def test_rejects_bad_probs(self):
        with pytest.raises(ValidationError):
            pb_pmf_batch([[0.5], [1.5]])
