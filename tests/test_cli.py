"""Command-line interface."""

import json
import logging

import pytest

from repro.cli import main
from repro.version import __version__


class TestDatasets:
    def test_lists_catalog(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "SA" in out and "TF-mini" in out


class TestTheory:
    def test_prints_table(self, capsys):
        assert main(["theory", "--lam-p", "0.5", "--lam-q", "2", "--max-x", "4"]) == 0
        out = capsys.readouterr().out
        assert "E(X) exact" in out
        assert out.count("\n") >= 7

    def test_requires_rates(self):
        with pytest.raises(SystemExit):
            main(["theory", "--lam-p", "0.5"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestGenerateAndStats:
    def test_generate_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "scenario"
        assert main(["generate", "SD-mini", "--out", str(out_dir)]) == 0
        assert (out_dir / "P.csv").exists()
        assert (out_dir / "Q.csv").exists()
        truth = json.loads((out_dir / "truth.json").read_text())
        assert len(truth) > 0

    def test_stats_prints_table1(self, capsys):
        assert main(["stats", "SD-mini"]) == 0
        out = capsys.readouterr().out
        assert "mean of |P|" in out
        assert "SD-mini" in out


class TestDiagnose:
    def test_prints_model_table(self, capsys):
        assert main(["diagnose", "SD-mini", "--buckets", "6"]) == 0
        out = capsys.readouterr().out
        assert "KL nats" in out
        assert "discriminability" in out

    def test_feasibility_section(self, capsys):
        assert main(
            ["diagnose", "SD-mini", "--lam-p", "0.5", "--lam-q", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "days to decisive" in out


class TestHoldout:
    def test_reports_generalisation(self, capsys):
        assert main(["holdout", "SD-mini"]) == 0
        out = capsys.readouterr().out
        assert "generalisation gap" in out


class TestSweepAndAssign:
    def test_sweep_prints_curves(self, capsys):
        assert main(["sweep", "SD-mini", "--queries", "8"]) == 0
        out = capsys.readouterr().out
        assert "alpha-filter" in out
        assert "naive-bayes" in out

    def test_assign_reports_accuracy(self, capsys):
        assert main(["assign", "SD-mini", "--method", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "accuracy over assigned" in out


class TestLink:
    def test_link_reports_metrics(self, capsys):
        assert main(
            ["link", "SD-mini", "--method", "naive-bayes", "--queries", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "perceptiveness" in out
        assert "selectiveness" in out

    def test_unknown_dataset_fails(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["link", "NOPE"])

    def test_json_output_with_top_k(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        assert main(
            ["link", "SD-mini", "--queries", "4", "--phi-r", "0.1",
             "--top-k", "2", "--json", str(out_path)]
        ) == 0
        records = json.loads(out_path.read_text())
        assert len(records) == 4
        for record in records:
            assert record["method"] == "naive-bayes"
            assert len(record["candidates"]) <= 2
            for cand in record["candidates"]:
                assert set(cand) >= {"candidate_id", "score", "p_rejection"}

    def test_json_to_stdout(self, capsys):
        assert main(
            ["link", "SD-mini", "--queries", "3", "--phi-r", "0.1",
             "--json", "-"]
        ) == 0
        out = capsys.readouterr().out
        payload = out[: out.rindex("]") + 1]
        assert len(json.loads(payload)) == 3


class TestServe:
    @pytest.fixture(autouse=True)
    def _detach_json_logging(self):
        # `ftl serve` attaches a JSON handler to the "ftl" logger bound
        # to the stderr of the moment — under pytest that stream is
        # closed when this test's capture ends, so detach the handler
        # rather than leak it into later tests.
        yield
        from repro.obs import JsonLogFormatter

        logger = logging.getLogger("ftl")
        for handler in list(logger.handlers):
            if isinstance(handler.formatter, JsonLogFormatter):
                logger.removeHandler(handler)

    def test_serve_smoke_drains_after_timeout(self, capsys):
        assert main(
            ["serve", "SD-mini", "--port", "0", "--shutdown-after", "0.3",
             "--top-k", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving SD-mini on http://127.0.0.1:" in out
        assert "drained; bye" in out

    def test_serve_requires_exactly_one_source(self, tmp_path):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="exactly one"):
            main(["serve"])
        with pytest.raises(ValidationError, match="exactly one"):
            main(["serve", "SD-mini", "--store", str(tmp_path / "s")])

    def test_serve_unknown_dataset_fails(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["serve", "NOPE", "--port", "0", "--shutdown-after", "0.1"])

    def test_serve_from_store_reports_provenance(self, tmp_path, capsys):
        from repro.datasets.catalog import build_scenario
        from repro.store import build_store

        store_dir = tmp_path / "q-store"
        build_store(store_dir, build_scenario("SD-mini").q_db, name="Q")
        assert main(
            ["serve", "--store", str(store_dir), "--port", "0",
             "--shutdown-after", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert f"serving {store_dir} on http://127.0.0.1:" in out
        assert "data source: source=store" in out
        assert "generation=1" in out
        assert "drained; bye" in out


class TestStoreCommand:
    def test_build_append_compact_stats(self, tmp_path, capsys):
        out_dir = tmp_path / "scenario"
        assert main(["generate", "SD-mini", "--out", str(out_dir)]) == 0
        store_dir = tmp_path / "q-store"
        assert main(
            ["store", "build", str(store_dir),
             "--from", str(out_dir / "Q.csv"), "--name", "Q"]
        ) == 0
        assert "generation 1" in capsys.readouterr().out
        assert main(
            ["store", "append", str(store_dir),
             "--from", str(out_dir / "P.csv")]
        ) == 0
        assert "generation 2" in capsys.readouterr().out
        assert main(["store", "index", str(store_dir),
                     "--reach-gap", "600"]) == 0
        assert "indexed" in capsys.readouterr().out
        assert main(["store", "compact", str(store_dir)]) == 0
        assert "-> 1 segments" in capsys.readouterr().out
        assert main(["store", "stats", str(store_dir)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["name"] == "Q"
        assert stats["n_segments"] == 1
        assert stats["has_index"] is True

    def test_build_from_scenario(self, tmp_path, capsys):
        store_dir = tmp_path / "scen-store"
        assert main(
            ["store", "build", str(store_dir), "--scenario", "SD-mini"]
        ) == 0
        assert "built" in capsys.readouterr().out
        assert main(["store", "stats", str(store_dir)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_trajectories"] > 0

    def test_build_requires_exactly_one_source(self, tmp_path):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="exactly one"):
            main(["store", "build", str(tmp_path / "s")])
