"""Wire protocol: parsing, validation, and structured error mapping.

Every malformed input must map to a structured error (never a
traceback), and every well-formed value must survive the round trip
bit-exactly.
"""

import json
import math

import pytest

from repro.core.engine import Candidate, LinkOptions, LinkResult
from repro.core.trajectory import Trajectory
from repro.errors import (
    DeadlineExceededError,
    NotFittedError,
    PayloadTooLargeError,
    ProtocolError,
    RemoteServiceError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.service import protocol


class TestParseJsonBody:
    def test_valid(self):
        assert protocol.parse_json_body(b'{"a": 1}') == {"a": 1}

    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.parse_json_body(b'{"a": ')

    def test_not_utf8(self):
        with pytest.raises(ProtocolError, match="not valid UTF-8"):
            protocol.parse_json_body(b"\xff\xfe{}")

    def test_oversized(self):
        with pytest.raises(PayloadTooLargeError, match="exceeds"):
            protocol.parse_json_body(b"x" * 100, max_bytes=10)

    def test_oversized_is_also_a_protocol_error(self):
        # The hierarchy keeps one catch-all for bad requests.
        assert issubclass(PayloadTooLargeError, ProtocolError)


class TestTrajectoryWire:
    def test_round_trip(self):
        traj = Trajectory([1.0, 2.0, 3.5], [0.1, 0.2, 0.3], [9.0, 8.0, 7.0],
                          "T1")
        back = protocol.trajectory_from_wire(protocol.trajectory_to_wire(traj))
        assert back.traj_id == "T1"
        assert list(back.ts) == [1.0, 2.0, 3.5]
        assert list(back.xs) == [0.1, 0.2, 0.3]
        assert list(back.ys) == [9.0, 8.0, 7.0]

    def test_wire_sorts_records(self):
        back = protocol.trajectory_from_wire(
            {"traj_id": "t", "records": [[5, 1, 1], [1, 2, 2]]}
        )
        assert list(back.ts) == [1.0, 5.0]

    def test_not_an_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.trajectory_from_wire([1, 2, 3])

    def test_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown keys"):
            protocol.trajectory_from_wire({"records": [], "bogus": 1})

    def test_bad_record_shape(self):
        with pytest.raises(ProtocolError, match=r"\[t, x, y\]"):
            protocol.trajectory_from_wire({"records": [[1, 2]]})

    def test_non_numeric_record(self):
        with pytest.raises(ProtocolError, match=r"\[t, x, y\]"):
            protocol.trajectory_from_wire({"records": [[1, 2, "x"]]})

    def test_non_finite_becomes_protocol_error(self):
        with pytest.raises(ProtocolError, match="invalid"):
            protocol.trajectory_from_wire(
                {"records": [[math.inf, 0.0, 0.0]]}
            )


class TestOptionsFromWire:
    BASE = LinkOptions()

    def test_empty_returns_base(self):
        assert protocol.options_from_wire({}, self.BASE) is self.BASE

    def test_overrides(self):
        opts = protocol.options_from_wire(
            {"method": "alpha-filter", "alpha1": 0.2, "top_k": 3}, self.BASE
        )
        assert opts.method == "alpha-filter"
        assert opts.alpha1 == 0.2
        assert opts.top_k == 3
        assert opts.phi_r == self.BASE.phi_r

    def test_unknown_key(self):
        with pytest.raises(ProtocolError, match="unknown keys"):
            protocol.options_from_wire({"phir": 0.5}, self.BASE)

    def test_unknown_method_maps_to_validation_error(self):
        with pytest.raises(ValidationError, match="unknown method"):
            protocol.options_from_wire({"method": "kmeans"}, self.BASE)

    def test_non_string_method(self):
        with pytest.raises(ProtocolError, match="must be a string"):
            protocol.options_from_wire({"method": 7}, self.BASE)

    def test_non_numeric_alpha(self):
        with pytest.raises(ProtocolError, match="must be a number"):
            protocol.options_from_wire({"alpha1": "big"}, self.BASE)

    def test_non_integer_top_k(self):
        with pytest.raises(ProtocolError, match="must be an integer"):
            protocol.options_from_wire({"top_k": 2.5}, self.BASE)


class TestLinkRequestFromWire:
    BASE = LinkOptions()

    def _query(self):
        return {"traj_id": "q", "records": [[0, 0, 0], [60, 10, 10]]}

    def test_minimal(self):
        wire = protocol.link_request_from_wire({"query": self._query()},
                                               self.BASE)
        assert wire.candidates is None
        assert wire.options is self.BASE
        assert wire.timeout_ms is None

    def test_full(self):
        wire = protocol.link_request_from_wire(
            {
                "query": self._query(),
                "candidates": [
                    {"traj_id": "c", "records": [[1, 2, 3]]}
                ],
                "options": {"top_k": 1},
                "timeout_ms": 250,
            },
            self.BASE,
        )
        assert len(wire.candidates) == 1
        assert wire.candidates[0].traj_id == "c"
        assert wire.options.top_k == 1
        assert wire.timeout_ms == 250.0

    def test_missing_query(self):
        with pytest.raises(ProtocolError, match="missing the required 'query'"):
            protocol.link_request_from_wire({}, self.BASE)

    def test_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown keys"):
            protocol.link_request_from_wire(
                {"query": self._query(), "qurey": 1}, self.BASE
            )

    def test_candidates_must_be_array(self):
        with pytest.raises(ProtocolError, match="array of trajectories"):
            protocol.link_request_from_wire(
                {"query": self._query(), "candidates": {}}, self.BASE
            )

    def test_bad_timeout(self):
        with pytest.raises(ProtocolError, match="timeout_ms"):
            protocol.link_request_from_wire(
                {"query": self._query(), "timeout_ms": -5}, self.BASE
            )


class TestIngestRequestFromWire:
    def test_minimal(self):
        wire = protocol.ingest_request_from_wire({"session": "s"})
        assert wire.session == "s"
        assert wire.query_records == []
        assert wire.candidate_records == {}
        assert wire.decide is True

    def test_full(self):
        wire = protocol.ingest_request_from_wire(
            {
                "session": "s",
                "query": [[0, 1, 2]],
                "candidates": {"c1": [[3, 4, 5]]},
                "expire_before": 100,
                "decide": False,
            }
        )
        assert wire.query_records == [[0, 1, 2]]
        assert wire.candidate_records == {"c1": [[3, 4, 5]]}
        assert wire.expire_before == 100.0
        assert wire.decide is False

    def test_missing_session(self):
        with pytest.raises(ProtocolError, match="session"):
            protocol.ingest_request_from_wire({"query": []})

    def test_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown keys"):
            protocol.ingest_request_from_wire({"session": "s", "nope": 1})

    def test_bad_candidate_records(self):
        with pytest.raises(ProtocolError, match=r"candidates\['c1'\]"):
            protocol.ingest_request_from_wire(
                {"session": "s", "candidates": {"c1": [[1]]}}
            )

    def test_bad_decide(self):
        with pytest.raises(ProtocolError, match="decide"):
            protocol.ingest_request_from_wire({"session": "s", "decide": "yes"})


class TestResultWire:
    def _result(self):
        return LinkResult(
            query_id="q1",
            method="naive-bayes",
            candidates=(
                Candidate("c1", 0.25, 0.5, 0.5, 7, 1),
                Candidate("c2", 0.1, 0.2, 0.5, 3, 0),
            ),
        )

    def test_round_trip_bit_exact(self):
        result = self._result()
        # Through real JSON text, as the daemon sends it.
        wire = json.loads(json.dumps(protocol.result_to_wire(result)))
        assert protocol.result_from_wire(wire) == result

    def test_malformed(self):
        with pytest.raises(ProtocolError, match="malformed link result"):
            protocol.result_from_wire({"query_id": "q"})


class TestErrorPayload:
    @pytest.mark.parametrize(
        "exc, status",
        [
            (ProtocolError("bad"), 400),
            (ValidationError("bad"), 400),
            (PayloadTooLargeError("big"), 413),
            (NotFittedError("unfitted"), 409),
            (ServiceOverloadedError("full"), 503),
            (DeadlineExceededError("late"), 504),
        ],
    )
    def test_library_errors_expose_type_and_message(self, exc, status):
        got_status, body = protocol.error_payload(exc)
        assert got_status == status
        assert body["error"]["type"] == type(exc).__name__
        assert body["error"]["message"] == str(exc)
        assert body["error"]["status"] == status

    def test_internal_errors_are_opaque(self):
        secret = RuntimeError("db password is hunter2")
        status, body = protocol.error_payload(secret)
        assert status == 500
        assert body["error"]["type"] == "InternalError"
        assert "hunter2" not in json.dumps(body)

    def test_remote_error_carries_payload(self):
        _, body = protocol.error_payload(ProtocolError("nope"))
        exc = RemoteServiceError(400, body)
        assert exc.status == 400
        assert "ProtocolError" in str(exc)
        assert exc.payload["error"]["message"] == "nope"
