"""Rejection / acceptance p-values (paper Section IV-D)."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.alignment import MutualSegmentProfile
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.models import ACCEPTANCE, REJECTION, BucketCounts, CompatibilityModel
from repro.errors import ValidationError


def model_with_prob(kind, prob, config):
    """A model whose every in-horizon bucket has the given probability."""
    n = config.n_buckets
    counts = BucketCounts.zeros(n)
    counts.total[:] = 1000
    counts.incompatible[:] = int(round(prob * 1000))
    return CompatibilityModel(kind, counts, config)


def profile(buckets, incompatible):
    return MutualSegmentProfile(
        np.asarray(buckets, dtype=np.int64), np.asarray(incompatible, dtype=bool)
    )


@pytest.fixture
def config():
    return FTLConfig(smoothing=0.0, min_bucket_count=1)


@pytest.fixture
def mr(config):
    return model_with_prob(REJECTION, 0.02, config)


@pytest.fixture
def ma(config):
    return model_with_prob(ACCEPTANCE, 0.8, config)


class TestRejectionPvalue:
    def test_no_evidence_gives_one(self, mr):
        assert rejection_pvalue(profile([], []), mr) == 1.0

    def test_consistent_observation_large_pvalue(self, mr):
        # 20 segments, 0 incompatible, under p=0.02: very consistent.
        p = profile([1] * 20, [False] * 20)
        assert rejection_pvalue(p, mr) == 1.0

    def test_inconsistent_observation_small_pvalue(self, mr):
        # 20 segments, 15 incompatible, under p=0.02: essentially impossible.
        p = profile([1] * 20, [True] * 15 + [False] * 5)
        assert rejection_pvalue(p, mr) < 1e-10

    def test_monotone_in_observed_count(self, mr):
        pvals = []
        for k in range(0, 11):
            p = profile([1] * 10, [True] * k + [False] * (10 - k))
            pvals.append(rejection_pvalue(p, mr))
        assert all(a >= b for a, b in zip(pvals, pvals[1:]))

    def test_beyond_horizon_segments_ignored(self, mr, config):
        far_bucket = config.n_buckets + 5
        p = profile([far_bucket] * 5, [False] * 5)
        assert rejection_pvalue(p, mr) == 1.0

    def test_wrong_model_kind_rejected(self, ma):
        with pytest.raises(ValidationError):
            rejection_pvalue(profile([1], [True]), ma)

    def test_backend_override(self, mr):
        p = profile([1] * 50, [True] * 3 + [False] * 47)
        exact = rejection_pvalue(p, mr, backend="dp")
        approx = rejection_pvalue(p, mr, backend="normal")
        assert approx == pytest.approx(exact, abs=0.02)


class TestAcceptancePvalue:
    def test_no_evidence_gives_one(self, ma):
        assert acceptance_pvalue(profile([], []), ma) == 1.0

    def test_same_person_observation_small_pvalue(self, ma):
        # 20 segments, 0 incompatible under p=0.8: lower tail tiny
        # -> reject "different persons" -> accept.
        p = profile([1] * 20, [False] * 20)
        assert acceptance_pvalue(p, ma) < 1e-10

    def test_different_person_observation_large_pvalue(self, ma):
        p = profile([1] * 20, [True] * 18 + [False] * 2)
        assert acceptance_pvalue(p, ma) > 0.5

    def test_monotone_in_observed_count(self, ma):
        pvals = []
        for k in range(0, 11):
            p = profile([1] * 10, [True] * k + [False] * (10 - k))
            pvals.append(acceptance_pvalue(p, ma))
        assert all(a <= b for a, b in zip(pvals, pvals[1:]))

    def test_wrong_model_kind_rejected(self, mr):
        with pytest.raises(ValidationError):
            acceptance_pvalue(profile([1], [True]), mr)


class TestJointBehaviour:
    """The two tests together separate same- from different-person pairs."""

    def test_same_person_pattern(self, mr, ma):
        p = profile([0, 1, 2, 3] * 5, [False] * 20)
        assert rejection_pvalue(p, mr) > 0.5
        assert acceptance_pvalue(p, ma) < 0.001

    def test_different_person_pattern(self, mr, ma):
        p = profile([0, 1, 2, 3] * 5, [True] * 16 + [False] * 4)
        assert rejection_pvalue(p, mr) < 0.001
        assert acceptance_pvalue(p, ma) > 0.1

    def test_ranking_score_orders_correctly(self, mr, ma):
        same = profile([1] * 15, [False] * 15)
        diff = profile([1] * 15, [True] * 12 + [False] * 3)
        score_same = rejection_pvalue(same, mr) * (1 - acceptance_pvalue(same, ma))
        score_diff = rejection_pvalue(diff, mr) * (1 - acceptance_pvalue(diff, ma))
        assert score_same > score_diff

    def test_fitted_models_separate_real_pairs(
        self, small_pair, fitted_models, config
    ):
        from repro.core.alignment import mutual_segment_profile

        mr, ma = fitted_models
        cfg = mr.config
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        other_qid = next(
            q for q in small_pair.q_db.ids() if q != qid
        )
        true_prof = mutual_segment_profile(
            small_pair.p_db[pid], small_pair.q_db[qid], cfg
        )
        false_prof = mutual_segment_profile(
            small_pair.p_db[pid], small_pair.q_db[other_qid], cfg
        )
        score_true = rejection_pvalue(true_prof, mr) * (
            1 - acceptance_pvalue(true_prof, ma)
        )
        score_false = rejection_pvalue(false_prof, mr) * (
            1 - acceptance_pvalue(false_prof, ma)
        )
        assert score_true > score_false
