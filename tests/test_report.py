"""One-command reproduction report."""

import pytest

from repro.errors import ValidationError
from repro.pipeline.report import ReportSpec, generate_report, write_report

TINY = ReportSpec(datasets=("SD-mini",), n_queries=5)


class TestSpec:
    def test_defaults_valid(self):
        spec = ReportSpec()
        assert len(spec.datasets) == 6

    def test_empty_datasets_rejected(self):
        with pytest.raises(ValidationError):
            ReportSpec(datasets=())

    def test_bad_queries_rejected(self):
        with pytest.raises(ValidationError):
            ReportSpec(n_queries=0)


class TestGenerate:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(TINY)

    def test_contains_all_sections(self, report):
        assert "# FTL reproduction report" in report
        assert "Table I" in report
        assert "Fig. 5" in report
        assert "Fig. 6" in report
        assert "Fig. 7" in report
        assert "Score separation" in report

    def test_dataset_mentioned(self, report):
        assert "SD-mini" in report

    def test_tradeoff_rows_present(self, report):
        assert "naive-bayes" in report
        assert "phi_r" in report

    def test_operating_point_cis_present(self, report):
        assert "Reference operating point" in report
        assert "bootstrap" in report
        assert "@ 95%" in report

    def test_sections_can_be_disabled(self):
        spec = ReportSpec(
            datasets=("SD-mini",),
            n_queries=3,
            include_table1=False,
            include_ranking=False,
            include_runtime=False,
            include_separation=False,
        )
        report = generate_report(spec)
        assert "Table I" not in report
        assert "Fig. 6" not in report
        assert "Fig. 5" in report


class TestWrite:
    def test_writes_file(self, tmp_path):
        out = write_report(tmp_path / "sub" / "report.md", TINY)
        assert out.exists()
        assert out.read_text().startswith("# FTL reproduction report")


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(
            ["report", "--out", str(out), "--datasets", "SD-mini",
             "--queries", "4"]
        ) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
