"""Fig. 8 precision harness (small-scale)."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.pipeline.precision_eval import (
    BASELINE_NAMES,
    evaluate_at_rate,
    format_precision,
    run_precision_comparison,
)
from repro.synth.scenario import make_split_databases


@pytest.fixture(scope="module")
def split_pair():
    """A tiny dense split scenario (12 agents, ~240 points each)."""
    rng = np.random.default_rng(21)
    trajs = []
    for i in range(12):
        n = 240
        ts = np.sort(rng.uniform(0, 2 * 86400.0, n))
        # A slow random walk (speed-bounded on average) per agent.
        xs = 20_000 + np.cumsum(rng.normal(0, 60, n))
        ys = 12_000 + np.cumsum(rng.normal(0, 60, n))
        trajs.append(Trajectory(ts, xs, ys, i))
    return make_split_databases(trajs, rng)


class TestEvaluateAtRate:
    def test_all_methods_reported(self, split_pair):
        rng = np.random.default_rng(0)
        qids = split_pair.sample_queries(5, rng)
        result = evaluate_at_rate(
            split_pair, 1.0, qids, FTLConfig(), rng, max_points=40
        )
        assert set(result.precision) == {"FTL", *BASELINE_NAMES}
        for value in result.precision.values():
            assert 0.0 <= value <= 1.0
        assert result.n_queries == 5

    def test_dense_data_ftl_high(self, split_pair):
        rng = np.random.default_rng(0)
        qids = split_pair.sample_queries(6, rng)
        result = evaluate_at_rate(
            split_pair, 1.0, qids, FTLConfig(), rng, max_points=40
        )
        assert result.precision["FTL"] >= 0.5

    def test_invalid_rate(self, split_pair):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            evaluate_at_rate(split_pair, 0.0, ["P0"], FTLConfig(), rng)

    def test_too_sparse_raises(self, split_pair):
        rng = np.random.default_rng(0)
        qids = split_pair.sample_queries(3, rng)
        with pytest.raises(ValidationError, match="too sparse"):
            evaluate_at_rate(
                split_pair, 0.001, qids, FTLConfig(), rng, max_points=40
            )


class TestSweep:
    def test_runs_grid(self, split_pair):
        rng = np.random.default_rng(0)
        results = run_precision_comparison(
            split_pair, FTLConfig(), rng, rates=(1.0, 0.5),
            n_queries=4, max_points=40,
        )
        assert [r.rate for r in results] == [1.0, 0.5]

    def test_bad_n_queries(self, split_pair):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            run_precision_comparison(
                split_pair, FTLConfig(), rng, n_queries=0
            )

    def test_format(self, split_pair):
        rng = np.random.default_rng(0)
        results = run_precision_comparison(
            split_pair, FTLConfig(), rng, rates=(1.0,),
            n_queries=3, max_points=40,
        )
        text = format_precision(results)
        assert "FTL" in text and "DTW" in text and "1.00" in text
