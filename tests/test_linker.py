"""The FTLLinker facade."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.linker import FTLLinker, LinkResult
from repro.errors import NotFittedError, ValidationError


@pytest.fixture(scope="module")
def linker(small_pair):
    rng = np.random.default_rng(0)
    return FTLLinker(
        FTLConfig(), alpha1=0.01, alpha2=0.1, phi_r=0.05
    ).fit(small_pair.p_db, small_pair.q_db, rng)


class TestLifecycle:
    def test_unfitted_raises(self, small_pair):
        fresh = FTLLinker(FTLConfig())
        pid = next(iter(small_pair.truth))
        with pytest.raises(NotFittedError):
            fresh.link(small_pair.p_db[pid])
        with pytest.raises(NotFittedError):
            _ = fresh.rejection_model

    def test_fit_returns_self(self, small_pair):
        rng = np.random.default_rng(0)
        linker = FTLLinker(FTLConfig())
        assert linker.fit(small_pair.p_db, small_pair.q_db, rng) is linker

    def test_with_models(self, small_pair, fitted_models):
        mr, ma = fitted_models
        linker = FTLLinker(FTLConfig()).with_models(mr, ma, small_pair.q_db)
        pid = next(iter(small_pair.truth))
        result = linker.link(small_pair.p_db[pid])
        assert isinstance(result, LinkResult)

    def test_models_accessible(self, linker):
        assert linker.rejection_model.kind == "rejection"
        assert linker.acceptance_model.kind == "acceptance"


class TestLinking:
    def test_unknown_method_rejected(self, linker, small_pair):
        pid = next(iter(small_pair.truth))
        with pytest.raises(ValidationError):
            linker.link(small_pair.p_db[pid], method="magic")

    @pytest.mark.parametrize("method", ["naive-bayes", "alpha-filter"])
    def test_result_structure(self, linker, small_pair, method):
        pid = next(iter(small_pair.truth))
        result = linker.link(small_pair.p_db[pid], method=method)
        assert result.query_id == pid
        assert result.method == method
        for candidate in result.candidates:
            assert 0.0 <= candidate.score <= 1.0
            assert candidate.candidate_id in small_pair.q_db

    @pytest.mark.parametrize("method", ["naive-bayes", "alpha-filter"])
    def test_candidates_sorted_by_score(self, linker, small_pair, method):
        pid = next(iter(small_pair.truth))
        result = linker.link(small_pair.p_db[pid], method=method)
        scores = [c.score for c in result.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_finds_true_matches(self, linker, small_pair):
        rng = np.random.default_rng(1)
        qids = small_pair.sample_queries(15, rng)
        hits = sum(
            1
            for pid in qids
            if linker.link(small_pair.p_db[pid]).contains(small_pair.truth[pid])
        )
        assert hits >= 11

    def test_candidate_pool_override(self, linker, small_pair):
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        restricted = [small_pair.q_db[qid]]
        result = linker.link(small_pair.p_db[pid], candidates=restricted)
        assert result.candidate_ids() == [qid]

    def test_result_helpers(self, linker, small_pair):
        pid = next(iter(small_pair.truth))
        result = linker.link(small_pair.p_db[pid])
        assert len(result) == len(result.candidate_ids())
        if result.candidates:
            assert result.contains(result.candidates[0].candidate_id)
        assert not result.contains("definitely-not-a-candidate")


class TestEnrichment:
    def test_enrich_merges_records(self, linker, small_pair):
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        query = small_pair.p_db[pid]
        merged = linker.enrich(query, qid)
        assert len(merged) == len(query) + len(small_pair.q_db[qid])
        assert np.all(np.diff(merged.ts) >= 0)

    def test_enrich_id_combines(self, linker, small_pair):
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        merged = linker.enrich(small_pair.p_db[pid], qid)
        assert merged.traj_id == (pid, qid)
