"""Streaming/incremental linking: equivalence with the batch path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FTLConfig
from repro.core.alignment import mutual_segment_profile
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.core.records import Record
from repro.core.streaming import (
    SOURCE_P,
    SOURCE_Q,
    StreamingLinker,
    StreamingPairEvidence,
)
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


def random_traj(rng, n, traj_id=None, span=2e4, extent=3e4):
    ts = np.sort(rng.uniform(0, span, n))
    return Trajectory(ts, rng.uniform(0, extent, n), rng.uniform(0, extent, n),
                      traj_id)


@pytest.fixture
def config():
    return FTLConfig()


class TestStreamingPairEvidence:
    def test_matches_batch_profile_counts(self, config):
        rng = np.random.default_rng(0)
        for trial in range(5):
            p = random_traj(rng, 20)
            q = random_traj(rng, 15)
            evidence = StreamingPairEvidence(config)
            evidence.extend(p, SOURCE_P)
            evidence.extend(q, SOURCE_Q)
            batch = mutual_segment_profile(p, q, config).within_horizon(
                config.n_buckets
            )
            assert evidence.n_mutual == batch.n_total
            assert evidence.n_incompatible == batch.n_incompatible

    def test_interleaved_insertion_order_invariant(self, config):
        rng = np.random.default_rng(1)
        p = random_traj(rng, 12)
        q = random_traj(rng, 12)
        in_order = StreamingPairEvidence(config)
        in_order.extend(p, SOURCE_P)
        in_order.extend(q, SOURCE_Q)
        shuffled = StreamingPairEvidence(config)
        records = [(r, SOURCE_P) for r in p] + [(r, SOURCE_Q) for r in q]
        rng.shuffle(records)
        for record, source in records:
            shuffled.insert(record, source)
        assert np.array_equal(
            in_order.bucket_counts(), shuffled.bucket_counts()
        )

    def test_empty_state(self, config):
        evidence = StreamingPairEvidence(config)
        assert evidence.n_records == 0
        assert evidence.n_mutual == 0
        assert evidence.n_incompatible == 0

    def test_single_record(self, config):
        evidence = StreamingPairEvidence(config)
        evidence.insert(Record(0.0, 1.0, 2.0), SOURCE_P)
        assert evidence.n_records == 1
        assert evidence.n_mutual == 0

    def test_bad_source_rejected(self, config):
        evidence = StreamingPairEvidence(config)
        with pytest.raises(ValidationError):
            evidence.insert(Record(0.0, 0.0, 0.0), 7)

    def test_bucketing_matches_batch_at_half_bucket_boundary(self, config):
        """Streaming must bucket dt exactly like ``FTLConfig.buckets_of``.

        Pinned at dt = 1.5 x time_unit_s — the half-bucket boundary
        where the old local ``int(round(...))`` could diverge from the
        batch path's np.rint bucketing.  Both co-located records, so the
        segment is compatible; only the bucket tally position matters.
        """
        dt = 1.5 * config.time_unit_s
        p = Trajectory([0.0], [100.0], [100.0], "p")
        q = Trajectory([dt], [100.0], [100.0], "q")
        evidence = StreamingPairEvidence(config)
        evidence.extend(p, SOURCE_P)
        evidence.extend(q, SOURCE_Q)
        batch = mutual_segment_profile(p, q, config).within_horizon(
            config.n_buckets
        )
        expected = np.zeros((2, config.n_buckets), dtype=np.int64)
        for bucket, incompatible in zip(batch.buckets, batch.incompatible):
            expected[int(incompatible), int(bucket)] += 1
        assert np.array_equal(
            evidence.bucket_counts(), expected
        ), "streaming bucket tallies diverged from the batch profile"
        expected_bucket = int(config.buckets_of(np.asarray([dt]))[0])
        assert evidence.bucket_counts()[0, expected_bucket] == 1

    def test_pvalues_match_batch(self, config, fitted_models):
        mr, ma = fitted_models
        rng = np.random.default_rng(2)
        p = random_traj(rng, 25)
        q = random_traj(rng, 20)
        evidence = StreamingPairEvidence(config)
        evidence.extend(p, SOURCE_P)
        evidence.extend(q, SOURCE_Q)
        profile = mutual_segment_profile(p, q, config)
        assert evidence.rejection_pvalue(mr) == pytest.approx(
            rejection_pvalue(profile, mr), abs=1e-12
        )
        assert evidence.acceptance_pvalue(ma) == pytest.approx(
            acceptance_pvalue(profile, ma), abs=1e-12
        )

    def test_llr_matches_batch_nb(self, config, fitted_models):
        mr, ma = fitted_models
        rng = np.random.default_rng(3)
        p = random_traj(rng, 18)
        q = random_traj(rng, 22)
        evidence = StreamingPairEvidence(config)
        evidence.extend(p, SOURCE_P)
        evidence.extend(q, SOURCE_Q)
        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.05)
        batch = matcher.decide(p.with_id("p"), q.with_id("q"))
        batch_llr = (
            batch.log_likelihood_rejection - batch.log_likelihood_acceptance
        )
        assert evidence.log_likelihood_ratio(mr, ma) == pytest.approx(
            batch_llr, abs=1e-9
        )

    def test_expire_before_matches_fresh_build(self, config):
        rng = np.random.default_rng(5)
        p = random_traj(rng, 20)
        q = random_traj(rng, 20)
        evidence = StreamingPairEvidence(config)
        evidence.extend(p, SOURCE_P)
        evidence.extend(q, SOURCE_Q)
        cutoff = 1e4
        removed = evidence.expire_before(cutoff)
        assert removed > 0

        fresh = StreamingPairEvidence(config)
        fresh.extend(p.slice_time(cutoff, np.inf), SOURCE_P)
        fresh.extend(q.slice_time(cutoff, np.inf), SOURCE_Q)
        assert np.array_equal(evidence.bucket_counts(), fresh.bucket_counts())
        assert evidence.n_records == fresh.n_records

    def test_expire_everything(self, config):
        rng = np.random.default_rng(6)
        evidence = StreamingPairEvidence(config)
        evidence.extend(random_traj(rng, 10), SOURCE_P)
        assert evidence.expire_before(1e18) == 10
        assert evidence.n_records == 0
        assert evidence.n_mutual == 0

    def test_expire_noop_on_old_cutoff(self, config):
        rng = np.random.default_rng(7)
        evidence = StreamingPairEvidence(config)
        evidence.extend(random_traj(rng, 10), SOURCE_P)
        assert evidence.expire_before(-1.0) == 0
        assert evidence.n_records == 10

    @given(st.integers(0, 2**31), st.integers(2, 15), st.integers(2, 15))
    @settings(max_examples=25, deadline=None)
    def test_property_counts_match_batch(self, seed, n_p, n_q):
        config = FTLConfig()
        rng = np.random.default_rng(seed)
        p = random_traj(rng, n_p)
        q = random_traj(rng, n_q)
        evidence = StreamingPairEvidence(config)
        evidence.extend(p, SOURCE_P)
        evidence.extend(q, SOURCE_Q)
        batch = mutual_segment_profile(p, q, config).within_horizon(
            config.n_buckets
        )
        assert evidence.n_mutual == batch.n_total
        assert evidence.n_incompatible == batch.n_incompatible


class TestStreamingLinker:
    @pytest.fixture
    def setup(self, small_pair, fitted_models):
        mr, ma = fitted_models
        linker = StreamingLinker(mr, ma, phi_r=0.1)
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        return small_pair, linker, pid, qid

    def test_streaming_equals_batch_decision(self, setup, fitted_models):
        pair, linker, pid, qid = setup
        mr, ma = fitted_models
        other = next(c for c in pair.q_db.ids() if c != qid)
        linker.add_candidate(qid)
        linker.add_candidate(other)
        for record in pair.p_db[pid]:
            linker.observe_query(record)
        for record in pair.q_db[qid]:
            linker.observe_candidate(qid, record)
        for record in pair.q_db[other]:
            linker.observe_candidate(other, record)

        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.1)
        for cid in (qid, other):
            stream = linker.decision(cid)
            batch = matcher.decide(pair.p_db[pid], pair.q_db[cid])
            assert stream.same_person == batch.same_person
            assert stream.log_posterior_ratio == pytest.approx(
                batch.log_posterior_ratio, abs=1e-9
            )

    def test_true_match_emerges(self, setup):
        pair, linker, pid, qid = setup
        linker.add_candidate(qid)
        # Interleave arrivals in time order (a realistic feed).
        events = [(r.t, r, "P") for r in pair.p_db[pid]] + [
            (r.t, r, "Q") for r in pair.q_db[qid]
        ]
        events.sort(key=lambda item: item[0])
        for _t, record, side in events:
            if side == "P":
                linker.observe_query(record)
            else:
                linker.observe_candidate(qid, record)
        assert linker.decision(qid).same_person
        assert [d.candidate_id for d in linker.matches()] == [qid]

    def test_late_candidate_registration_replays_query(self, setup):
        pair, linker, pid, qid = setup
        for record in pair.p_db[pid]:
            linker.observe_query(record)
        linker.add_candidate(qid)  # after the query stream
        for record in pair.q_db[qid]:
            linker.observe_candidate(qid, record)
        assert linker.decision(qid).same_person

    def test_unknown_candidate_rejected(self, setup):
        _pair, linker, _pid, _qid = setup
        with pytest.raises(ValidationError):
            linker.observe_candidate("ghost", Record(0.0, 0.0, 0.0))
        with pytest.raises(ValidationError):
            linker.decision("ghost")

    def test_duplicate_candidate_rejected(self, setup):
        _pair, linker, _pid, qid = setup
        linker.add_candidate(qid)
        with pytest.raises(ValidationError):
            linker.add_candidate(qid)

    def test_phi_validation(self, fitted_models):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            StreamingLinker(mr, ma, phi_r=0.0)


class TestStreamingLinkerLifecycle:
    """Session-reuse hooks added for the serving daemon."""

    @pytest.fixture
    def setup(self, small_pair, fitted_models):
        mr, ma = fitted_models
        linker = StreamingLinker(mr, ma, phi_r=0.1)
        pid = next(iter(small_pair.truth))
        qid = small_pair.truth[pid]
        return small_pair, linker, pid, qid

    def test_introspection(self, setup):
        pair, linker, pid, qid = setup
        assert linker.n_candidates == 0
        assert linker.candidate_ids() == []
        linker.add_candidate(qid)
        linker.add_candidate("other")
        assert linker.n_candidates == 2
        assert linker.candidate_ids() == [qid, "other"]
        assert linker.has_candidate(qid)
        assert not linker.has_candidate("ghost")
        for record in pair.p_db[pid]:
            linker.observe_query(record)
        assert linker.n_query_records == len(pair.p_db[pid])

    def test_discard_candidate(self, setup):
        _pair, linker, _pid, qid = setup
        linker.add_candidate(qid)
        linker.discard_candidate(qid)
        assert not linker.has_candidate(qid)
        assert linker.decisions() == []
        with pytest.raises(ValidationError, match="unknown candidate"):
            linker.discard_candidate(qid)
        # Re-registration after discard is allowed.
        linker.add_candidate(qid)
        assert linker.has_candidate(qid)

    def test_expire_before_equals_fresh_linker(self, setup, fitted_models):
        """After expiry, decisions equal a fresh linker fed only the
        surviving records."""
        pair, linker, pid, qid = setup
        mr, ma = fitted_models
        linker.add_candidate(qid)
        p_records = list(pair.p_db[pid])
        q_records = list(pair.q_db[qid])
        for record in p_records:
            linker.observe_query(record)
        for record in q_records:
            linker.observe_candidate(qid, record)

        all_ts = sorted(r.t for r in p_records + q_records)
        cutoff = all_ts[len(all_ts) // 2]
        # Drops are counted per structure: the pair evidence holds both
        # streams, the query history holds the P records again.
        n_evidence = sum(t < cutoff for t in all_ts)
        n_history = sum(r.t < cutoff for r in p_records)
        assert linker.expire_before(cutoff) == n_evidence + n_history

        fresh = StreamingLinker(mr, ma, phi_r=0.1)
        fresh.add_candidate(qid)
        for record in p_records:
            if record.t >= cutoff:
                fresh.observe_query(record)
        for record in q_records:
            if record.t >= cutoff:
                fresh.observe_candidate(qid, record)

        expired, clean = linker.decision(qid), fresh.decision(qid)
        assert expired.n_mutual == clean.n_mutual
        assert expired.n_incompatible == clean.n_incompatible
        assert expired.same_person == clean.same_person
        assert expired.log_posterior_ratio == pytest.approx(
            clean.log_posterior_ratio, abs=1e-9
        )

    def test_expire_trims_query_history_for_late_candidates(self, setup):
        pair, linker, pid, qid = setup
        p_records = list(pair.p_db[pid])
        for record in p_records:
            linker.observe_query(record)
        cutoff = p_records[len(p_records) // 2].t
        linker.expire_before(cutoff)
        surviving = [r for r in p_records if r.t >= cutoff]
        assert linker.n_query_records == len(surviving)
        # A candidate registered after expiry replays only survivors.
        linker.add_candidate(qid)
        for record in pair.q_db[qid]:
            linker.observe_candidate(qid, record)
        fresh = StreamingPairEvidence(linker._config)
        for record in surviving:
            fresh.insert(record, SOURCE_P)
        for record in pair.q_db[qid]:
            fresh.insert(record, SOURCE_Q)
        decision = linker.decision(qid)
        assert decision.n_mutual == fresh.n_mutual
        assert decision.n_incompatible == fresh.n_incompatible

    def test_expire_everything(self, setup):
        pair, linker, pid, qid = setup
        linker.add_candidate(qid)
        for record in pair.p_db[pid]:
            linker.observe_query(record)
        removed = linker.expire_before(float("inf"))
        # Once from the pair evidence, once from the query history.
        assert removed == 2 * len(pair.p_db[pid])
        assert linker.n_query_records == 0
        assert linker.decision(qid).n_mutual == 0


class TestExpireBoundarySemantics:
    """Sliding-window edge cases shared with the store's watermark.

    The contract everywhere (``StreamingPairEvidence.expire_before``,
    ``StreamingLinker.expire_before``, ``TrajectoryStore.expire_before``)
    is *strict*: records with ``t < cutoff`` drop, a record at exactly
    the cutoff survives.
    """

    def test_record_at_exact_cutoff_survives(self, config):
        evidence = StreamingPairEvidence(config)
        evidence.insert(Record(100.0, 0.0, 0.0), SOURCE_P)
        evidence.insert(Record(200.0, 10.0, 10.0), SOURCE_Q)
        assert evidence.expire_before(100.0) == 0
        assert evidence.n_records == 2
        assert evidence.expire_before(100.0 + 1e-9) == 1
        assert evidence.n_records == 1

    def test_cutoff_on_segment_join_removes_exactly_that_segment(
        self, config
    ):
        """Expiring the older endpoint of a segment deletes exactly the
        tally joining it to its successor, no neighbours."""
        dt = 0.5 * config.time_unit_s  # all three joins in-horizon
        evidence = StreamingPairEvidence(config)
        evidence.insert(Record(0.0, 0.0, 0.0), SOURCE_P)
        evidence.insert(Record(dt, 0.0, 0.0), SOURCE_Q)
        evidence.insert(Record(2 * dt, 0.0, 0.0), SOURCE_P)
        evidence.insert(Record(3 * dt, 0.0, 0.0), SOURCE_Q)
        assert evidence.n_mutual == 3
        # cutoff exactly at the second record: only the first drops, and
        # with it exactly one mutual segment (0 -> dt).
        assert evidence.expire_before(dt) == 1
        assert evidence.n_mutual == 2

    def test_tallies_at_boundary_match_batch_over_survivors(
        self, config
    ):
        """Property over random cutoffs pinned to record timestamps."""
        rng = np.random.default_rng(11)
        for trial in range(6):
            p = random_traj(rng, 14)
            q = random_traj(rng, 12)
            evidence = StreamingPairEvidence(config)
            evidence.extend(p, SOURCE_P)
            evidence.extend(q, SOURCE_Q)
            all_ts = np.sort(np.concatenate([p.ts, q.ts]))
            # an exact record time: the boundary case merge-on-read and
            # the store watermark must agree on
            cutoff = float(all_ts[int(rng.integers(1, len(all_ts)))])
            evidence.expire_before(cutoff)
            batch = StreamingPairEvidence(config)
            batch.extend(p.slice_time(cutoff, np.inf), SOURCE_P)
            batch.extend(q.slice_time(cutoff, np.inf), SOURCE_Q)
            assert np.array_equal(
                evidence.bucket_counts(), batch.bucket_counts()
            ), f"boundary expiry diverged (trial {trial}, cutoff {cutoff})"
