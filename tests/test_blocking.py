"""Temporal blocking index."""

import numpy as np
import pytest

from repro.core.blocking import CandidateIndex
from repro.core.database import TrajectoryDatabase
from repro.core.prefilter import TimeOverlapPrefilter
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError


def traj(start, end, traj_id, n=5):
    ts = np.linspace(start, end, n)
    return Trajectory(ts, np.zeros(n), np.zeros(n), traj_id)


@pytest.fixture
def db():
    return TrajectoryDatabase(
        [
            traj(0, 100, "early"),
            traj(50, 200, "overlap"),
            traj(500, 700, "late"),
            traj(0, 1000, "always"),
        ]
    )


@pytest.fixture
def index(db):
    return CandidateIndex(db)


class TestCandidateIndex:
    def test_len(self, index):
        assert len(index) == 4

    def test_overlapping_windows_found(self, index):
        query = traj(60, 90, "q")
        ids = set(index.ids_for(query))
        assert ids == {"early", "overlap", "always"}

    def test_min_overlap_filters(self, index):
        query = traj(90, 190, "q")
        # 'early' overlaps [90,100] = 10s only.
        assert "early" in index.ids_for(query, min_overlap_s=5.0)
        assert "early" not in index.ids_for(query, min_overlap_s=20.0)

    def test_disjoint_query_empty(self, index):
        query = traj(2000, 3000, "q")
        assert index.ids_for(query, min_overlap_s=1.0) == []

    def test_empty_query(self, index):
        assert index.candidates_for(Trajectory.empty("q")) == []

    def test_empty_database(self):
        index = CandidateIndex(TrajectoryDatabase())
        assert index.candidates_for(traj(0, 10, "q")) == []
        with pytest.raises(ValidationError):
            index.coverage_window()

    def test_coverage_window(self, index):
        assert index.coverage_window() == (0.0, 1000.0)

    def test_negative_overlap_rejected(self, index):
        with pytest.raises(ValidationError):
            index.candidates_for(traj(0, 10, "q"), min_overlap_s=-1.0)

    def test_superset_of_prefilter(self, small_pair):
        """Contract: index results ⊇ prefilter-kept candidates."""
        index = CandidateIndex(small_pair.q_db)
        prefilter = TimeOverlapPrefilter(min_overlap_s=3600.0)
        rng = np.random.default_rng(0)
        for pid in small_pair.sample_queries(8, rng):
            query = small_pair.p_db[pid]
            from_index = set(index.ids_for(query, min_overlap_s=3600.0))
            from_prefilter = {
                c.traj_id
                for c in small_pair.q_db
                if prefilter.keep(query, c)
            }
            assert from_prefilter <= from_index

    def test_linking_through_index(self, small_pair, fitted_models):
        """Index-restricted linking keeps the true matches."""
        from repro.core.linker import FTLLinker

        mr, ma = fitted_models
        index = CandidateIndex(small_pair.q_db)
        linker = FTLLinker(mr.config, phi_r=0.1).with_models(
            mr, ma, small_pair.q_db
        )
        rng = np.random.default_rng(1)
        hits = 0
        qids = small_pair.sample_queries(10, rng)
        for pid in qids:
            query = small_pair.p_db[pid]
            pool = index.candidates_for(query, min_overlap_s=3600.0)
            result = linker.link(query, candidates=pool)
            hits += result.contains(small_pair.truth[pid])
        assert hits >= 7
