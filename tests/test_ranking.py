"""Candidate ranking (paper Section V, Eq. 2)."""

import numpy as np
import pytest

from repro.core.alignment import MutualSegmentProfile
from repro.core.ranking import rank_candidates, score_candidate, top_k
from repro.errors import ValidationError


def profile(n, k):
    return MutualSegmentProfile(
        np.full(n, 1, dtype=np.int64),
        np.array([True] * k + [False] * (n - k), dtype=bool),
    )


class TestScoreCandidate:
    def test_score_is_eq2(self, fitted_models):
        mr, ma = fitted_models
        scored = score_candidate(profile(15, 0), mr, ma)
        assert scored.score == pytest.approx(
            scored.p_rejection * (1 - scored.p_acceptance)
        )

    def test_score_in_unit_interval(self, fitted_models):
        mr, ma = fitted_models
        for k in range(0, 16, 5):
            scored = score_candidate(profile(15, k), mr, ma)
            assert 0.0 <= scored.score <= 1.0

    def test_compatible_scores_higher(self, fitted_models):
        mr, ma = fitted_models
        good = score_candidate(profile(15, 0), mr, ma).score
        bad = score_candidate(profile(15, 12), mr, ma).score
        assert good > bad

    def test_model_kinds_validated(self, fitted_models):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            score_candidate(profile(5, 0), ma, mr)


class TestRankCandidates:
    def test_true_match_ranks_first_usually(self, small_pair, fitted_models):
        mr, ma = fitted_models
        rng = np.random.default_rng(0)
        qids = small_pair.sample_queries(10, rng)
        top1_hits = 0
        for pid in qids:
            ranked = rank_candidates(
                small_pair.p_db[pid], small_pair.q_db, mr, ma
            )
            if ranked[0].candidate_id == small_pair.truth[pid]:
                top1_hits += 1
        assert top1_hits >= 7

    def test_scores_non_increasing(self, small_pair, fitted_models):
        mr, ma = fitted_models
        pid = next(iter(small_pair.truth))
        ranked = rank_candidates(small_pair.p_db[pid], small_pair.q_db, mr, ma)
        scores = [c.score for c in ranked]
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_all_candidates_scored(self, small_pair, fitted_models):
        mr, ma = fitted_models
        pid = next(iter(small_pair.truth))
        ranked = rank_candidates(small_pair.p_db[pid], small_pair.q_db, mr, ma)
        assert len(ranked) == len(small_pair.q_db)

    def test_true_match_beats_median(self, small_pair, fitted_models):
        mr, ma = fitted_models
        pid = next(iter(small_pair.truth))
        ranked = rank_candidates(small_pair.p_db[pid], small_pair.q_db, mr, ma)
        position = next(
            i for i, c in enumerate(ranked)
            if c.candidate_id == small_pair.truth[pid]
        )
        assert position < len(ranked) // 2


class TestTopK:
    def test_prefix(self, small_pair, fitted_models):
        mr, ma = fitted_models
        pid = next(iter(small_pair.truth))
        ranked = rank_candidates(small_pair.p_db[pid], small_pair.q_db, mr, ma)
        assert top_k(ranked, 3) == list(ranked[:3])

    def test_k_larger_than_list(self):
        assert top_k([], 5) == []

    def test_negative_k(self):
        with pytest.raises(ValueError):
            top_k([], -1)
