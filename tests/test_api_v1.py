"""The versioned v1 wire surface vs. the deprecated bare-path aliases.

Every ``/v1/...`` JSON endpoint answers with the response envelope
(``api_version`` / ``shard_count`` / ``data`` / ``trace_id``); the bare
legacy paths must serve the *identical* body plus deprecation headers.
See docs/api-v1.md.
"""

import http.client

import pytest

from repro.core.engine import LinkEngine, LinkOptions
from repro.service.client import ServiceClient
from repro.service.protocol import (
    API_VERSION,
    ResponseEnvelope,
    ShardInfo,
    envelope_data,
    trajectory_to_wire,
)
from repro.service.server import BackgroundServer, ServerConfig

RANKING = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)


@pytest.fixture(scope="module")
def engine(fitted_models):
    mr, ma = fitted_models
    return LinkEngine(mr, ma, options=RANKING)


@pytest.fixture(scope="module")
def pool(small_pair):
    return list(small_pair.q_db)


@pytest.fixture(scope="module")
def queries(small_pair):
    ids = sorted(small_pair.truth)[:2]
    return [small_pair.p_db[qid] for qid in ids]


@pytest.fixture(scope="module")
def server(engine, pool):
    config = ServerConfig(port=0, max_wait_ms=1.0, session_ttl_s=3600.0)
    with BackgroundServer(engine, pool, config=config) as background:
        yield background


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as service_client:
        yield service_client


def _exchange(address, method, path, body=None):
    """One raw round trip; returns (status, headers dict, parsed body)."""
    import json

    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        response_headers = dict(response.getheaders())
        content_type = response_headers.get("Content-Type", "")
        parsed = json.loads(text) if "json" in content_type else text
        return response.status, response_headers, parsed
    finally:
        conn.close()


class TestEnvelope:
    def test_shape(self, client):
        envelope = client.request("GET", "/v1/healthz")
        assert envelope["api_version"] == API_VERSION == "v1"
        assert envelope["shard_count"] == 1
        assert isinstance(envelope["data"], dict)
        assert envelope["trace_id"]
        assert "shards" not in envelope  # healthz carries no provenance

    def test_link_provenance_single_process(self, client, pool, queries):
        envelope = client.link_raw({"query": trajectory_to_wire(queries[0])})
        (shard,) = envelope["shards"]
        assert shard["shard"] == 0
        assert shard["n_candidates"] == len(pool)
        assert shard["n_matched"] == len(envelope["data"]["candidates"])
        assert shard["elapsed_ms"] >= 0.0

    def test_envelope_data_unwraps(self):
        wire = ResponseEnvelope(
            data={"x": 1},
            shard_count=2,
            shards=(ShardInfo(0, 42, 3, 1, 0.5),),
        ).to_wire()
        assert wire["api_version"] == "v1"
        assert wire["shards"][0]["pid"] == 42
        assert envelope_data(wire) == {"x": 1}

    def test_errors_are_not_enveloped(self, server):
        status, _, body = _exchange(server.address, "GET", "/v1/nope")
        assert status == 404
        # Structured error + trace, but no envelope around it.
        assert set(body) == {"error", "trace_id"}
        assert "api_version" not in body and "data" not in body
        assert "/v1/link" in body["error"]["message"]

    def test_metrics_text_is_bare(self, server):
        status, headers, body = _exchange(server.address, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert isinstance(body, str) and body.startswith("# HELP")


class TestLegacyAliases:
    @pytest.mark.parametrize("path", ["/healthz", "/metrics?format=json"])
    def test_get_body_identical_modulo_trace(self, server, path):
        bare = path.partition("?")[0]
        _, legacy_headers, legacy = _exchange(server.address, "GET", path)
        _, v1_headers, v1 = _exchange(server.address, "GET", "/v1" + path)
        assert legacy_headers["Deprecation"] == "true"
        assert legacy_headers["Link"] == f'</v1{bare}>; rel="successor-version"'
        assert "Deprecation" not in v1_headers
        # Same envelope shape and keys; volatile fields (uptime,
        # counters, trace) differ between the two calls.
        assert set(legacy) == set(v1)
        assert legacy["api_version"] == v1["api_version"]
        assert legacy["shard_count"] == v1["shard_count"]
        assert set(legacy["data"]) == set(v1["data"])

    def test_link_body_identical_modulo_trace(self, server, queries):
        body = {"query": trajectory_to_wire(queries[0])}
        s_legacy, legacy_headers, legacy = _exchange(
            server.address, "POST", "/link", body
        )
        s_v1, v1_headers, v1 = _exchange(
            server.address, "POST", "/v1/link", body
        )
        assert s_legacy == s_v1 == 200
        assert legacy_headers["Deprecation"] == "true"
        assert legacy_headers["Link"] == '</v1/link>; rel="successor-version"'
        assert "Deprecation" not in v1_headers
        legacy.pop("trace_id")
        v1.pop("trace_id")
        # /link is a pure read: everything but elapsed timing must be
        # byte-for-byte equal, scores included.
        for envelope in (legacy, v1):
            for shard in envelope["shards"]:
                shard.pop("elapsed_ms")
        assert legacy == v1

    def test_legacy_metrics_text_also_aliased(self, server):
        _, headers, body = _exchange(server.address, "GET", "/metrics")
        assert headers["Deprecation"] == "true"
        assert isinstance(body, str) and "ftl_requests_total" in body

    def test_legacy_and_v1_share_latency_series(self, server, client):
        # One canonical route per endpoint family: both spellings feed
        # the same request_link histogram rather than splitting it.
        client.healthz()
        _exchange(server.address, "GET", "/healthz")
        metrics = client.metrics()
        assert "request_healthz" in metrics["latency"]
        assert "request_v1_healthz" not in metrics["latency"]

    def test_trace_header_on_both_families(self, server):
        for path in ("/healthz", "/v1/healthz"):
            _, headers, parsed = _exchange(server.address, "GET", path)
            assert headers["X-Trace-Id"] == parsed["trace_id"]
