"""Trajectory alignment and mutual segments (paper Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FTLConfig
from repro.core.alignment import (
    SOURCE_P,
    SOURCE_Q,
    align,
    mutual_segment_profile,
    self_segment_profile,
)
from repro.core.trajectory import Trajectory


def traj(ts, xs=None, ys=None, traj_id=None):
    n = len(ts)
    return Trajectory(
        ts,
        np.zeros(n) if xs is None else xs,
        np.zeros(n) if ys is None else ys,
        traj_id,
    )


@pytest.fixture
def config():
    return FTLConfig()


class TestAlign:
    def test_merged_is_time_sorted(self):
        w = align(traj([0.0, 100.0]), traj([50.0, 150.0]))
        assert list(w.ts) == [0.0, 50.0, 100.0, 150.0]

    def test_sources_labelled(self):
        w = align(traj([0.0, 100.0]), traj([50.0, 150.0]))
        assert list(w.sources) == [SOURCE_P, SOURCE_Q, SOURCE_P, SOURCE_Q]

    def test_tie_puts_p_first(self):
        w = align(traj([10.0]), traj([10.0]))
        assert list(w.sources) == [SOURCE_P, SOURCE_Q]

    def test_length(self):
        w = align(traj([0.0, 1.0, 2.0]), traj([0.5]))
        assert len(w) == 4

    def test_paper_figure3_segment_counts(self):
        # Fig. 3: p1 q1 q2 p2 p3 q3 p4 q4 -> mutual at (p1,q1), (q2,p2),
        # (p3,q3), (q3,p4), (p4,q4); self at (q1,q2), (p2,p3).
        p = traj([1.0, 4.0, 5.0, 7.0])
        q = traj([2.0, 3.0, 6.0, 8.0])
        w = align(p, q)
        assert w.n_mutual_segments() == 5
        assert w.n_self_segments() == 2

    def test_segment_iteration(self):
        p = traj([1.0, 4.0])
        q = traj([2.0, 3.0])
        w = align(p, q)
        segments = list(w.segments())
        assert len(segments) == 3
        mutual = list(w.mutual_segments())
        assert len(mutual) == 2
        assert all(s.is_mutual for s in mutual)

    def test_segment_timediff_nonnegative(self):
        w = align(traj([1.0, 4.0]), traj([2.0, 3.0]))
        assert all(s.timediff >= 0 for s in w.segments())

    def test_empty_side(self):
        w = align(traj([]), traj([1.0, 2.0]))
        assert len(w) == 2
        assert w.n_mutual_segments() == 0

    def test_getitem(self):
        w = align(traj([0.0], xs=[5.0], ys=[6.0]), traj([]))
        record, source = w[0]
        assert (record.x, record.y) == (5.0, 6.0)
        assert source == SOURCE_P


class TestMutualSegmentProfile:
    def test_matches_object_api_counts(self, config):
        rng = np.random.default_rng(0)
        p = traj(np.sort(rng.uniform(0, 1e4, 30)), rng.uniform(0, 1e3, 30),
                 rng.uniform(0, 1e3, 30))
        q = traj(np.sort(rng.uniform(0, 1e4, 20)), rng.uniform(0, 1e3, 20),
                 rng.uniform(0, 1e3, 20))
        profile = mutual_segment_profile(p, q, config)
        assert profile.n_total == align(p, q).n_mutual_segments()

    def test_empty_inputs_give_empty_profile(self, config):
        profile = mutual_segment_profile(traj([]), traj([1.0]), config)
        assert profile.n_total == 0
        assert profile.n_incompatible == 0

    def test_no_interleave_gives_empty_only_one_mutual(self, config):
        # P entirely before Q: exactly one mutual segment at the junction.
        profile = mutual_segment_profile(
            traj([0.0, 1.0]), traj([100.0, 200.0]), config
        )
        assert profile.n_total == 1

    def test_compatibility_against_definition(self, config):
        # 10 km apart 60 s apart: 600 m/s >> Vmax -> incompatible.
        p = traj([0.0], xs=[0.0])
        q = traj([60.0], xs=[10_000.0])
        profile = mutual_segment_profile(p, q, config)
        assert profile.n_incompatible == 1

    def test_compatible_when_slow(self, config):
        p = traj([0.0], xs=[0.0])
        q = traj([3600.0], xs=[10_000.0])
        profile = mutual_segment_profile(p, q, config)
        assert profile.n_incompatible == 0

    def test_zero_dt_distinct_location_incompatible(self, config):
        p = traj([10.0], xs=[0.0])
        q = traj([10.0], xs=[1.0])
        profile = mutual_segment_profile(p, q, config)
        assert profile.n_incompatible == 1

    def test_zero_dt_same_location_compatible(self, config):
        p = traj([10.0], xs=[5.0])
        q = traj([10.0], xs=[5.0])
        profile = mutual_segment_profile(p, q, config)
        assert profile.n_incompatible == 0

    def test_buckets_use_config_unit(self):
        config = FTLConfig(time_unit_s=30.0)
        p = traj([0.0])
        q = traj([90.0])
        profile = mutual_segment_profile(p, q, config)
        assert profile.buckets[0] == 3

    def test_within_horizon_filters(self, config):
        p = traj([0.0, 10_000.0])
        q = traj([5.0, 10_005.0])
        profile = mutual_segment_profile(p, q, config)
        within = profile.within_horizon(config.n_buckets)
        assert within.n_total <= profile.n_total

    def test_symmetric_in_count(self, config):
        rng = np.random.default_rng(2)
        p = traj(np.sort(rng.uniform(0, 1e4, 15)))
        q = traj(np.sort(rng.uniform(0, 1e4, 25)))
        assert (
            mutual_segment_profile(p, q, config).n_total
            == mutual_segment_profile(q, p, config).n_total
        )


class TestSelfSegmentProfile:
    def test_counts_consecutive_segments(self, config):
        t = traj([0.0, 60.0, 120.0])
        profile = self_segment_profile(t, config)
        assert profile.n_total == 2

    def test_short_trajectory_empty(self, config):
        assert self_segment_profile(traj([1.0]), config).n_total == 0
        assert self_segment_profile(traj([]), config).n_total == 0

    def test_speeding_segment_incompatible(self, config):
        t = traj([0.0, 60.0], xs=[0.0, 50_000.0])
        profile = self_segment_profile(t, config)
        assert profile.n_incompatible == 1

    def test_slow_segments_compatible(self, config):
        t = traj([0.0, 3600.0, 7200.0], xs=[0.0, 1000.0, 2000.0])
        assert self_segment_profile(t, config).n_incompatible == 0


class TestAlignmentProperties:
    @given(
        st.lists(st.floats(0, 1e5, allow_nan=False), max_size=25),
        st.lists(st.floats(0, 1e5, allow_nan=False), max_size=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_mutual_plus_self_segments(self, ts_p, ts_q):
        p = traj(sorted(ts_p))
        q = traj(sorted(ts_q))
        w = align(p, q)
        total = max(len(p) + len(q) - 1, 0)
        assert w.n_mutual_segments() + w.n_self_segments() == total

    @given(
        st.lists(st.floats(0, 1e5, allow_nan=False), min_size=1, max_size=25),
        st.lists(st.floats(0, 1e5, allow_nan=False), min_size=1, max_size=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_mutual_count_bounded_by_smaller_side(self, ts_p, ts_q):
        # Each record participates in at most 2 mutual segments; the count
        # is at most 2 * min(|P|, |Q|) (alternation bound).
        p = traj(sorted(ts_p))
        q = traj(sorted(ts_q))
        w = align(p, q)
        assert w.n_mutual_segments() <= 2 * min(len(p), len(q))

    @given(
        st.lists(st.floats(0, 1e4, allow_nan=False), min_size=2, max_size=25),
        st.lists(st.floats(0, 1e4, allow_nan=False), min_size=2, max_size=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_profile_matches_object_api(self, ts_p, ts_q):
        config = FTLConfig()
        rng = np.random.default_rng(0)
        p = traj(sorted(ts_p), rng.uniform(0, 1e4, len(ts_p)),
                 rng.uniform(0, 1e4, len(ts_p)))
        q = traj(sorted(ts_q), rng.uniform(0, 1e4, len(ts_q)),
                 rng.uniform(0, 1e4, len(ts_q)))
        profile = mutual_segment_profile(p, q, config)
        assert profile.n_total == align(p, q).n_mutual_segments()
