"""(alpha1, alpha2)-filtering (paper Section IV-D)."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.alignment import MutualSegmentProfile
from repro.core.filtering import AlphaFilter, FilterDecision
from repro.core.models import ACCEPTANCE, REJECTION, BucketCounts, CompatibilityModel
from repro.errors import ValidationError


def model_with_prob(kind, prob, config):
    counts = BucketCounts.zeros(config.n_buckets)
    counts.total[:] = 1000
    counts.incompatible[:] = int(round(prob * 1000))
    return CompatibilityModel(kind, counts, config)


def profile(n, k, bucket=1):
    return MutualSegmentProfile(
        np.full(n, bucket, dtype=np.int64),
        np.array([True] * k + [False] * (n - k), dtype=bool),
    )


@pytest.fixture
def config():
    return FTLConfig(smoothing=0.0, min_bucket_count=1)


@pytest.fixture
def matcher(config):
    mr = model_with_prob(REJECTION, 0.02, config)
    ma = model_with_prob(ACCEPTANCE, 0.8, config)
    return AlphaFilter(mr, ma, alpha1=0.05, alpha2=0.05)


class TestConstruction:
    def test_alpha_bounds(self, config):
        mr = model_with_prob(REJECTION, 0.02, config)
        ma = model_with_prob(ACCEPTANCE, 0.8, config)
        with pytest.raises(ValidationError):
            AlphaFilter(mr, ma, alpha1=1.5)
        with pytest.raises(ValidationError):
            AlphaFilter(mr, ma, alpha2=-0.1)

    def test_properties(self, matcher):
        assert matcher.alpha1 == 0.05
        assert matcher.alpha2 == 0.05


class TestDecideProfile:
    def test_same_person_accepted(self, matcher):
        decision = matcher.decide_profile(profile(20, 0), candidate_id="c")
        assert decision.accepted
        assert decision.candidate_id == "c"
        assert not decision.rejected_in_phase1
        assert decision.p_rejection > 0.05
        assert decision.p_acceptance < 0.05

    def test_different_person_rejected_phase1(self, matcher):
        decision = matcher.decide_profile(profile(20, 16))
        assert not decision.accepted
        assert decision.rejected_in_phase1
        assert decision.p_acceptance is None

    def test_ambiguous_survives_phase1_fails_phase2(self, config):
        # Moderate incompatibility: passes rejection but not acceptance.
        mr = model_with_prob(REJECTION, 0.3, config)
        ma = model_with_prob(ACCEPTANCE, 0.5, config)
        matcher = AlphaFilter(mr, ma, alpha1=0.05, alpha2=0.01)
        decision = matcher.decide_profile(profile(20, 8))
        assert not decision.accepted
        assert not decision.rejected_in_phase1

    def test_no_evidence_never_accepted(self, matcher):
        decision = matcher.decide_profile(profile(0, 0))
        assert not decision.accepted
        assert decision.p_rejection == 1.0
        assert decision.p_acceptance == 1.0

    def test_counts_recorded(self, matcher):
        decision = matcher.decide_profile(profile(15, 3))
        assert decision.n_mutual == 15
        assert decision.n_incompatible == 3


class TestStrictnessMonotonicity:
    """Paper: raising alpha1 or lowering alpha2 is stricter."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_alpha1_monotone(self, config, k):
        mr = model_with_prob(REJECTION, 0.1, config)
        ma = model_with_prob(ACCEPTANCE, 0.8, config)
        prof = profile(20, k)
        accepted_loose = AlphaFilter(mr, ma, 0.001, 0.2).decide_profile(prof).accepted
        accepted_strict = AlphaFilter(mr, ma, 0.5, 0.2).decide_profile(prof).accepted
        assert accepted_loose or not accepted_strict

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_alpha2_monotone(self, config, k):
        mr = model_with_prob(REJECTION, 0.1, config)
        ma = model_with_prob(ACCEPTANCE, 0.8, config)
        prof = profile(20, k)
        accepted_loose = AlphaFilter(mr, ma, 0.01, 0.5).decide_profile(prof).accepted
        accepted_strict = AlphaFilter(mr, ma, 0.01, 0.001).decide_profile(prof).accepted
        assert accepted_loose or not accepted_strict


class TestQueryAPI:
    def test_decide_on_trajectories(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = AlphaFilter(mr, ma, 0.01, 0.1)
        pid = next(iter(small_pair.truth))
        decision = matcher.decide(
            small_pair.p_db[pid], small_pair.q_db[small_pair.truth[pid]]
        )
        assert isinstance(decision, FilterDecision)
        assert decision.candidate_id == small_pair.truth[pid]

    def test_query_returns_only_accepted(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = AlphaFilter(mr, ma, 0.01, 0.1)
        pid = next(iter(small_pair.truth))
        results = matcher.query(small_pair.p_db[pid], small_pair.q_db)
        assert all(d.accepted for d in results)

    def test_query_finds_true_match_mostly(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = AlphaFilter(mr, ma, 0.01, 0.2)
        rng = np.random.default_rng(0)
        hits = 0
        qids = small_pair.sample_queries(15, rng)
        for pid in qids:
            results = matcher.query(small_pair.p_db[pid], small_pair.q_db)
            if any(d.candidate_id == small_pair.truth[pid] for d in results):
                hits += 1
        assert hits >= 10  # most true matches survive both phases

    def test_query_is_selective(self, small_pair, fitted_models):
        mr, ma = fitted_models
        matcher = AlphaFilter(mr, ma, 0.01, 0.1)
        rng = np.random.default_rng(0)
        total = 0
        qids = small_pair.sample_queries(10, rng)
        for pid in qids:
            total += len(matcher.query(small_pair.p_db[pid], small_pair.q_db))
        # far fewer than |Q| candidates per query on average
        assert total / 10 < 0.2 * len(small_pair.q_db)
