"""Sharded serving: ring, partitioning, merge equivalence, prefork e2e.

The merge-equivalence property tests exercise the exact worker code
(:func:`shard_link_matches`) and coordinator merge
(:func:`merge_partials`) without forking; a real multi-worker
:class:`BackgroundServer` then covers the fork/scatter/respawn path
end to end, including a SIGKILLed worker.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.engine import LinkEngine, LinkOptions, LinkRequest
from repro.core.trajectory import Trajectory
from repro.errors import ValidationError
from repro.obs import merge_histogram_snapshots
from repro.obs.prometheus import render_exposition, validate_exposition
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, ServerConfig
from repro.service.shard import (
    HashRing,
    home_shard,
    merge_partials,
    partition_pool,
    plan_shards,
    reindexed,
    shard_link_matches,
    stable_hash,
)

RANKING = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)
CELL_M = 1000.0


@pytest.fixture(scope="module")
def engine(fitted_models):
    mr, ma = fitted_models
    return LinkEngine(mr, ma, options=RANKING)


@pytest.fixture(scope="module")
def pool(small_pair):
    return list(small_pair.q_db)


@pytest.fixture(scope="module")
def queries(small_pair):
    ids = sorted(small_pair.truth)[:4]
    return [small_pair.p_db[qid] for qid in ids]


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"cell:{i}" for i in range(200)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_stable_hash_is_not_process_salted(self):
        # blake2b of the repr, not builtin hash(): same value every call.
        assert stable_hash("cell:42") == stable_hash("cell:42")
        assert stable_hash("cell:42") != stable_hash("cell:43")

    def test_all_shards_get_keys(self):
        ring = HashRing(4)
        owners = {ring.shard_for(f"cell:{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"k{i}") for i in range(50)} == {0}

    def test_resize_moves_few_keys(self):
        # Consistent hashing: going 4 -> 5 shards should relocate
        # roughly 1/5 of the keys, not reshuffle everything.
        keys = [f"cell:{i}" for i in range(1000)]
        four, five = HashRing(4), HashRing(5)
        moved = sum(
            1 for k in keys if four.shard_for(k) != five.shard_for(k)
        )
        assert moved < len(keys) // 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            HashRing(0)
        with pytest.raises(ValidationError):
            HashRing(2, vnodes=0)


class TestPartitioning:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
    def test_disjoint_covering_ascending(self, pool, n_shards):
        parts = partition_pool(pool, HashRing(n_shards), CELL_M)
        assert len(parts) == n_shards
        flat = [i for part in parts for i in part]
        assert sorted(flat) == list(range(len(pool)))
        assert len(set(flat)) == len(flat)
        for part in parts:
            assert part == sorted(part)

    def test_colocated_trajectories_share_a_shard(self):
        # Same home cell (first record in the same 1 km grid cell)
        # => same shard, for every shard count.
        a = Trajectory([0.0], [123.0], [456.0], "a")
        b = Trajectory([9.0], [900.0], [10.0], "b")
        for n_shards in (2, 3, 4, 8):
            ring = HashRing(n_shards)
            assert home_shard(ring, a, CELL_M) == home_shard(ring, b, CELL_M)

    def test_reindexed_shares_arrays(self, pool):
        clone = reindexed(pool[0], 7)
        assert clone.traj_id == 7
        assert np.shares_memory(clone.ts, pool[0].ts)
        assert np.shares_memory(clone.xs, pool[0].xs)
        assert len(clone) == len(pool[0])


class TestMergeEquivalence:
    """Scatter-gather == single-process ranking, bit for bit."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "options",
        [
            None,  # server defaults (alpha-filter, rank everything)
            LinkOptions(method="naive-bayes", phi_r=0.1),
            LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0, top_k=3),
            LinkOptions(method="naive-bayes", phi_r=0.1, top_k=3),
        ],
        ids=["default", "naive-bayes", "alpha-topk", "nb-topk"],
    )
    def test_merged_equals_single_process(
        self, engine, pool, queries, n_shards, options
    ):
        requests = [
            LinkRequest(query=query, options=options) for query in queries
        ]
        expected = engine.link_requests(
            requests, default_pool=pool, options=RANKING
        )

        plans = plan_shards(pool, HashRing(n_shards), CELL_M)
        units = [(query, options) for query in queries]
        partials = [
            shard_link_matches(engine, list(plan.local_pool), units, RANKING)
            for plan in plans
        ]
        pool_ids = [t.traj_id for t in pool]
        resolved = options if options is not None else RANKING
        merged = [
            merge_partials(
                [partial[j] for partial in partials],
                pool_ids,
                query.traj_id,
                resolved,
            )
            for j, query in enumerate(queries)
        ]
        assert merged == expected  # bit-identical LinkResults

    def test_per_shard_topk_truncation_is_lossless(self, engine, pool, queries):
        # With top_k smaller than any shard slice, the merged top-k must
        # still equal the global top-k (the per-shard truncation cannot
        # evict a global winner).
        options = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0,
                              top_k=2)
        expected = engine.link_requests(
            [LinkRequest(query=queries[0], options=options)],
            default_pool=pool,
            options=RANKING,
        )[0]
        plans = plan_shards(pool, HashRing(4), CELL_M)
        partials = [
            shard_link_matches(
                engine, list(plan.local_pool), [(queries[0], options)], RANKING
            )[0]
            for plan in plans
        ]
        got = merge_partials(
            partials, [t.traj_id for t in pool], queries[0].traj_id, options
        )
        assert got == expected
        assert len(got) <= 2


WORKER_SNAP = {
    "bounds": (0.1, 1.0),
    "counts": [1, 2, 0],  # raw per-bucket counts + overflow bucket
    "sum": 0.9,
    "count": 3,
    "max": 0.4,
}


class TestHistogramMerge:
    def test_sums_raw_counts(self):
        other = {"bounds": (0.1, 1.0), "counts": [4, 0, 1], "sum": 2.0,
                 "count": 5, "max": 1.7}
        merged = merge_histogram_snapshots([WORKER_SNAP, other])
        assert merged["counts"] == [5, 2, 1]
        assert merged["count"] == 8
        assert merged["sum"] == pytest.approx(2.9)
        assert merged["max"] == 1.7

    def test_mismatched_bounds_rejected(self):
        other = dict(WORKER_SNAP, bounds=(0.2, 1.0))
        with pytest.raises(ValueError, match="mismatched"):
            merge_histogram_snapshots([WORKER_SNAP, other])

    def test_zero_snapshots_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            merge_histogram_snapshots([])


class TestExpositionRegression:
    """The cross-worker aggregation bug ``validate_exposition`` guards.

    Summing worker documents that already carry *cumulative* ``le``
    buckets double-counts every observation below each bound; the
    resulting family has a bucket larger than ``+Inf``/``_count``.
    """

    def test_double_counted_cumulative_sum_is_flagged(self):
        # Each worker's cumulative buckets are [1, 3, +Inf=3]; the buggy
        # aggregate sums those cumulative values: [2, 6, +Inf=6].
        buggy = {"bounds": (0.1, 1.0), "counts": [2, 6, 6], "sum": 1.8,
                 "count": 6, "max": 0.4}
        text = render_exposition(
            {},
            {
                "latency": [
                    ({}, buggy),
                    ({"shard": "0"}, WORKER_SNAP),
                    ({"shard": "1"}, WORKER_SNAP),
                ]
            },
        )
        errors = validate_exposition(text)
        assert errors, "double-counted aggregate must not validate"
        assert any("not cumulative" in e for e in errors)
        # Checked per label signature: the per-shard series are clean,
        # only the unlabelled aggregate is broken.
        assert all("shard=" not in e for e in errors)

    def test_raw_merge_validates(self):
        merged = merge_histogram_snapshots([WORKER_SNAP, WORKER_SNAP])
        text = render_exposition(
            {"requests_total": [({}, 4), ({"shard": "0"}, 2)]},
            {
                "latency": [
                    ({}, merged),
                    ({"shard": "0"}, WORKER_SNAP),
                    ({"shard": "1"}, WORKER_SNAP),
                ]
            },
            {"worker_up": [({"shard": "0"}, 1.0), ({"shard": "1"}, 1.0)]},
        )
        assert validate_exposition(text) == []


# ----------------------------------------------------------------------
# Prefork end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_server(engine, pool):
    config = ServerConfig(
        port=0, max_wait_ms=1.0, workers=3, session_ttl_s=3600.0
    )
    with BackgroundServer(engine, pool, config=config) as background:
        yield background


@pytest.fixture(scope="module")
def plain_server(engine, pool):
    config = ServerConfig(
        port=0, max_wait_ms=1.0, workers=1, session_ttl_s=3600.0
    )
    with BackgroundServer(engine, pool, config=config) as background:
        yield background


@pytest.fixture
def sharded_client(sharded_server):
    with ServiceClient(*sharded_server.address) as client:
        yield client


class TestShardedServer:
    def test_health_reports_worker_fleet(self, sharded_client, pool):
        envelope = sharded_client.request("GET", "/v1/healthz")
        assert envelope["shard_count"] == 3
        health = envelope["data"]
        workers = health["workers"]
        assert [w["shard"] for w in workers] == [0, 1, 2]
        assert all(w["alive"] for w in workers)
        assert sum(w["pool_size"] for w in workers) == len(pool)
        assert all(w["pid"] != os.getpid() for w in workers)

    def test_link_bit_identical_to_single_process(
        self, sharded_client, engine, pool, queries
    ):
        expected = engine.link_batch(queries, pool)
        got = [sharded_client.link(query) for query in queries]
        assert got == expected

    def test_link_envelope_carries_shard_provenance(
        self, sharded_client, pool, queries
    ):
        from repro.service.protocol import trajectory_to_wire

        envelope = sharded_client.link_raw(
            {"query": trajectory_to_wire(queries[0])}
        )
        assert envelope["api_version"] == "v1"
        assert envelope["shard_count"] == 3
        shards = envelope["shards"]
        assert sorted(s["shard"] for s in shards) == [0, 1, 2]
        assert sum(s["n_candidates"] for s in shards) == len(pool)
        for shard in shards:
            assert shard["elapsed_ms"] >= 0.0

    def test_explicit_candidates_run_on_coordinator(
        self, sharded_client, engine, pool, queries
    ):
        subset = pool[:5]
        expected = engine.link(queries[0], subset)
        assert sharded_client.link(queries[0], candidates=subset) == expected
        from repro.service.protocol import trajectory_to_wire

        envelope = sharded_client.link_raw(
            {
                "query": trajectory_to_wire(queries[0]),
                "candidates": [trajectory_to_wire(c) for c in subset],
            }
        )
        assert [s["shard"] for s in envelope["shards"]] == [-1]

    def test_sharded_ingest_matches_single_process(
        self, sharded_server, plain_server
    ):
        query = [(0.0, 100.0, 100.0), (120.0, 180.0, 140.0)]
        candidates = {
            "near": [(10.0, 110.0, 105.0), (130.0, 175.0, 150.0)],
            "far": [(15.0, 9000.0, 9000.0)],
            "late": [(400.0, 200.0, 160.0)],
        }
        with ServiceClient(*sharded_server.address) as sharded, \
                ServiceClient(*plain_server.address) as plain:
            got = sharded.ingest("eq", query, candidates, decide=True)
            expected = plain.ingest("eq", query, candidates, decide=True)
        assert got == expected

    def test_sharded_metrics_exposition_validates(self, sharded_client):
        sharded_client.healthz()
        text = sharded_client.metrics_text()
        assert validate_exposition(text) == []
        assert 'shard="0"' in text
        assert "ftl_worker_up" in text
        assert "ftl_shard_count 3" in text

    def test_worker_crash_respawns_and_keeps_serving(
        self, sharded_client, engine, pool, queries
    ):
        before = sharded_client.healthz()["workers"]
        victim = before[1]["pid"]
        os.kill(victim, signal.SIGKILL)

        # The very next scatter hits the dead pipe, respawns the worker
        # and retries: results stay bit-identical to single-process.
        expected = engine.link_batch(queries, pool)
        got = [sharded_client.link(query) for query in queries]
        assert got == expected

        after = sharded_client.healthz()["workers"]
        assert all(w["alive"] for w in after)
        assert after[1]["pid"] != victim
        assert sum(w["restarts"] for w in after) >= 1
        metrics = sharded_client.metrics()
        assert metrics["counters"]["worker_restarts_total"] >= 1


# ----------------------------------------------------------------------
# Coordinator-side unit coverage (no fork): plan-drift detection and
# the bounded rehydration ledger.
# ----------------------------------------------------------------------
class TestPlanDriftDetection:
    def test_generation_only_change_flags_drift(self, engine, pool,
                                                tmp_path):
        # An eviction that only masks records mutates pool *content*
        # while the id list (and its order) stays identical; drift must
        # still be flagged via the store generation recorded at plan
        # time.
        from repro.service.state import ServiceState
        from repro.service.supervisor import ShardSupervisor
        from repro.store import TrajectoryStore

        store = TrajectoryStore.create(tmp_path / "drift-store", pool)
        state = ServiceState(
            engine=engine, pool=list(store.load()), options=RANKING,
            store=store,
        )
        sup = ShardSupervisor(state, 2)
        assert sup.plan_drift() is False
        # cutoff just past the earliest record: at least one record is
        # masked, and (checked below) no trajectory vanishes entirely,
        # so the id list is untouched.
        cutoff = min(float(t.ts[0]) for t in state.pool) + 1e-6
        assert all(float(t.ts[-1]) >= cutoff for t in state.pool)
        assert store.expire_before(cutoff) >= 1
        state.refresh_pool()
        assert [t.traj_id for t in state.pool] == sup._pool_ids
        assert sup.plan_drift() is True
        assert state.metrics.counter("shard_plan_drift_total") == 1
        # steady state: no repeat warning/counter while still stale
        assert sup.plan_drift() is True
        assert state.metrics.counter("shard_plan_drift_total") == 1


class TestSessionLedgerBounds:
    def _supervisor(self, engine, pool):
        from repro.service.state import ServiceState
        from repro.service.supervisor import ShardSupervisor

        state = ServiceState(engine=engine, pool=list(pool), options=RANKING)
        return ShardSupervisor(state, 2), state

    def test_eviction_cutoff_compacts_query_history(self, engine, pool):
        from repro.service.supervisor import _SessionEntry

        sup, _state = self._supervisor(engine, pool)
        entry = _SessionEntry("s", created_at=0.0, last_used_at=0.0)
        entry.query_history = [
            [[10.0, 0.0, 0.0], [50.0, 1.0, 1.0]],
            [[200.0, 2.0, 2.0]],
        ]
        entry.expire_before = 100.0
        sup._compact_ledger(entry)
        assert entry.query_history == [[[200.0, 2.0, 2.0]]]

    def test_record_cap_drops_oldest_and_counts(self, engine, pool,
                                                monkeypatch):
        import repro.service.supervisor as supervisor_mod
        from repro.service.supervisor import _SessionEntry

        monkeypatch.setattr(
            supervisor_mod, "MAX_QUERY_HISTORY_RECORDS", 5
        )
        sup, state = self._supervisor(engine, pool)
        entry = _SessionEntry("s", created_at=0.0, last_used_at=0.0)
        entry.query_history = [
            [[float(i), 0.0, 0.0] for i in range(4)],
            [[float(10 + i), 0.0, 0.0] for i in range(4)],
        ]
        sup._compact_ledger(entry)
        kept = [r for batch in entry.query_history for r in batch]
        assert len(kept) == 5
        # newest records survive, oldest were dropped
        assert kept == [[3.0, 0.0, 0.0]] + [
            [float(10 + i), 0.0, 0.0] for i in range(4)
        ]
        assert state.metrics.counter(
            "session_ledger_truncated_records_total"
        ) == 3


# ----------------------------------------------------------------------
# Streaming over a store-backed sharded daemon: frozen-plan drift
# detection and worker-session rehydration.  The single-process
# streaming surface is covered in tests/test_stream.py.
# ----------------------------------------------------------------------
@pytest.fixture()
def stream_sharded_server(engine, pool, tmp_path):
    from repro.store import TrajectoryStore

    store = TrajectoryStore.create(tmp_path / "shard-store", pool)
    shared = list(store.load())
    config = ServerConfig(
        port=0, max_wait_ms=1.0, workers=2, session_ttl_s=3600.0
    )
    with BackgroundServer(engine, shared, config=config,
                          store=store) as background:
        yield background, store


class TestShardedStreaming:
    @staticmethod
    def _near_records(query, n=4):
        return [
            (float(t), float(x), float(y))
            for t, x, y in zip(query.ts[:n], query.xs[:n], query.ys[:n])
        ]

    def test_flush_updates_standing_query_and_flags_plan_drift(
        self, stream_sharded_server, fitted_models, small_pair
    ):
        server, store = stream_sharded_server
        mr, ma = fitted_models
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        with ServiceClient(*server.address, timeout_s=60) as c:
            assert "ftl_shard_plan_stale 0" in c.metrics_text()
            assert c.register_query(query, query_id="sq")["seq"] == 1
            near = self._near_records(query)
            got = c.ingest("drift", candidate_records={"cNew": near},
                           decide=False, flush=True)
            assert got["flushed_records"] == len(near)
            watched = c.watch("sq", since=1, wait_ms=5_000)
            assert watched["seq"] == 2
            [event] = watched["events"]
            assert "cNew" in event["changed"]
            # standing rankings are scored against the *refreshed* pool
            # (workers receive the trajectories on the wire), so they
            # stay bit-identical to a from-scratch single-process run
            # even though the frozen shard plan no longer matches.
            fresh = LinkEngine(mr, ma, options=RANKING).link_batch(
                [query], list(store.load())
            )[0]
            assert event["ranking"] == [
                cand.to_dict() for cand in fresh.candidates
            ]
            # ...and the drift is surfaced, not hidden: gauge flips to 1.
            assert "ftl_shard_plan_stale 1" in c.metrics_text()

    def test_killed_worker_rehydrates_flushed_sessions(
        self, stream_sharded_server, small_pair
    ):
        server, store = stream_sharded_server
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        near = self._near_records(query)
        shifted = [(t + 30.0, x + 40.0, y - 40.0) for t, x, y in near]
        with ServiceClient(*server.address, timeout_s=60) as c:
            first = c.ingest(
                "reh", query_records=near,
                candidate_records={"cA": near, "cB": shifted},
                decide=True, flush=True,
            )
            assert first["flushed_records"] == len(near) + len(shifted)
            before = {
                d["candidate_id"]: d for d in first["decisions"]
            }
            assert set(before) == {"cA", "cB"}

            workers = c.healthz()["workers"]
            os.kill(workers[0]["pid"], signal.SIGKILL)
            # The next ingest round-trip hits the dead pipe: the
            # supervisor respawns the worker and replays the session's
            # flushed segments from the store's append log.
            second = c.ingest("reh", decide=True)
            after = {
                d["candidate_id"]: d for d in second["decisions"]
            }
            # Rehydrated evidence is rebuilt from the persisted records,
            # so the decisions survive the crash bit-identically.
            assert after == before

            metrics = c.metrics()
            assert metrics["counters"]["worker_rehydrated_sessions_total"] >= 1
            assert metrics["counters"]["worker_restarts_total"] >= 1

            # Replayed records were already persisted: re-flushing the
            # session must append nothing (no double-observation).
            third = c.ingest("reh", decide=False, flush=True)
            assert third["flushed_records"] == 0
            assert c.healthz()["workers"][0]["pid"] != workers[0]["pid"]
