"""Top-level pipeline entry points (the functions the benches call)."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.errors import ValidationError
from repro.pipeline.ranking_eval import run_ranking_eval
from repro.pipeline.runtime_eval import run_runtime_eval
from repro.pipeline.tradeoff import run_tradeoff


@pytest.fixture(scope="module")
def pair():
    from repro.datasets import build_scenario

    return build_scenario("SD-mini")


@pytest.fixture(scope="module")
def config():
    return FTLConfig()


class TestRunTradeoff:
    def test_produces_both_curves(self, pair, config):
        rng = np.random.default_rng(0)
        curves = run_tradeoff(pair, config, rng, n_queries=8)
        assert set(curves) == {"alpha-filter", "naive-bayes"}
        for points in curves.values():
            for point in points:
                assert 0.0 <= point.perceptiveness <= 1.0
                assert 0.0 <= point.selectiveness <= 1.0

    def test_caps_queries_at_truth_size(self, pair, config):
        rng = np.random.default_rng(0)
        curves = run_tradeoff(pair, config, rng, n_queries=10**6)
        assert curves["naive-bayes"]  # ran without raising

    def test_custom_ladders(self, pair, config):
        rng = np.random.default_rng(0)
        curves = run_tradeoff(
            pair, config, rng, n_queries=5,
            alpha_ladder=[(0.05, 0.05)], phi_ladder=[0.1],
        )
        assert len(curves["alpha-filter"]) == 1
        assert len(curves["naive-bayes"]) == 1

    def test_invalid_queries(self, pair, config):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            run_tradeoff(pair, config, rng, n_queries=0)


class TestRunRankingEval:
    def test_default_ks(self, pair, config):
        rng = np.random.default_rng(0)
        curves = run_ranking_eval(pair, config, rng, n_queries=10)
        for curve in curves.values():
            assert curve.ks == tuple(sorted(curve.ks))
            assert len(curve.hits) == len(curve.ks)

    def test_explicit_ks(self, pair, config):
        rng = np.random.default_rng(0)
        curves = run_ranking_eval(
            pair, config, rng, n_queries=8, ks=[1, 4, 8]
        )
        assert curves["naive-bayes"].ks == (1, 4, 8)

    def test_invalid_queries(self, pair, config):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            run_ranking_eval(pair, config, rng, n_queries=-1)


class TestRunRuntimeEval:
    def test_custom_params(self, pair, config):
        rng = np.random.default_rng(0)
        result = run_runtime_eval(
            pair, config, rng, n_queries=3, dataset="x",
            alpha=(0.01, 0.1), phi_r=0.2,
        )
        assert result.n_queries == 3
        assert result.alpha_filter_s > 0

    def test_invalid_queries(self, pair, config):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            run_runtime_eval(pair, config, rng, n_queries=0)
