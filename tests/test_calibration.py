"""Calibration of the hypothesis tests' p-values."""

import numpy as np
import pytest

from repro.core.alignment import mutual_segment_profile
from repro.core.calibration import (
    CalibrationCurve,
    calibration_curve,
    format_calibration,
    max_anticonservatism,
)
from repro.core.hypothesis import acceptance_pvalue, rejection_pvalue
from repro.errors import ValidationError


class TestCurveMechanics:
    def test_uniform_sample_tracks_thresholds(self):
        rng = np.random.default_rng(0)
        ps = rng.random(50_000)
        curve = calibration_curve(ps)
        for t, emp in curve.rows():
            assert emp == pytest.approx(t, abs=0.01)

    def test_point_mass_at_one_is_conservative(self):
        curve = calibration_curve(np.ones(100))
        assert max_anticonservatism(curve) < 0.0

    def test_point_mass_at_zero_is_anticonservative(self):
        curve = calibration_curve(np.zeros(100))
        assert max_anticonservatism(curve) > 0.9

    def test_validation(self):
        with pytest.raises(ValidationError):
            calibration_curve([])
        with pytest.raises(ValidationError):
            calibration_curve([1.5])
        with pytest.raises(ValidationError):
            calibration_curve([0.5], thresholds=[0.0])

    def test_format(self):
        curve = CalibrationCurve((0.05,), (0.04,), 10)
        text = format_calibration({"p1": curve})
        assert "p1" in text and "0.05" in text


class TestFTLTestsCalibrated:
    """The FTL p-values are conservative under their respective nulls."""

    def test_rejection_pvalue_conservative_on_true_pairs(
        self, small_pair, fitted_models
    ):
        mr, _ma = fitted_models
        p1s = []
        for pid, qid in small_pair.truth.items():
            profile = mutual_segment_profile(
                small_pair.p_db[pid], small_pair.q_db[qid], mr.config
            )
            p1s.append(rejection_pvalue(profile, mr))
        curve = calibration_curve(p1s, thresholds=(0.01, 0.05, 0.1))
        # Allow modest sampling noise on 30 pairs.
        assert max_anticonservatism(curve) < 0.12

    def test_acceptance_pvalue_conservative_on_false_pairs(
        self, small_pair, fitted_models
    ):
        _mr, ma = fitted_models
        rng = np.random.default_rng(0)
        p2s = []
        q_ids = small_pair.q_db.ids()
        for pid in list(small_pair.truth)[:15]:
            for qid in rng.choice(len(q_ids), size=5, replace=False):
                cand = q_ids[int(qid)]
                if cand == small_pair.truth[pid]:
                    continue
                profile = mutual_segment_profile(
                    small_pair.p_db[pid], small_pair.q_db[cand], ma.config
                )
                p2s.append(acceptance_pvalue(profile, ma))
        curve = calibration_curve(p2s, thresholds=(0.01, 0.05, 0.1))
        assert max_anticonservatism(curve) < 0.1
