"""Property-based invariants for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import greedy_assignment, optimal_assignment
from repro.core.blocking import CandidateIndex
from repro.core.database import TrajectoryDatabase
from repro.core.prefilter import TimeOverlapPrefilter
from repro.core.trajectory import Trajectory
from repro.stats.bootstrap import bootstrap_ci
from repro.pipeline.score_analysis import auc_from_scores


def score_triples(max_side=6):
    @st.composite
    def build(draw):
        n_q = draw(st.integers(1, max_side))
        n_c = draw(st.integers(1, max_side))
        triples = []
        for i in range(n_q):
            for j in range(n_c):
                score = draw(st.floats(0.0, 1.0, allow_nan=False))
                triples.append((f"p{i}", f"c{j}", score))
        return triples

    return build()


class TestAssignmentProperties:
    @given(score_triples())
    @settings(max_examples=40, deadline=None)
    def test_optimal_never_below_greedy(self, triples):
        greedy = greedy_assignment(triples, min_score=0.0)
        optimal = optimal_assignment(triples, min_score=0.0)
        assert optimal.total_score >= greedy.total_score - 1e-9

    @given(score_triples())
    @settings(max_examples=40, deadline=None)
    def test_both_are_matchings(self, triples):
        for solver in (greedy_assignment, optimal_assignment):
            result = solver(triples, min_score=0.0)
            assert len(set(result.pairs.keys())) == len(result.pairs)
            assert len(set(result.pairs.values())) == len(result.pairs)

    @given(score_triples(), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_min_score_respected(self, triples, min_score):
        result = greedy_assignment(triples, min_score=min_score)
        scores = {(q, c): s for q, c, s in triples}
        for q, c in result.pairs.items():
            assert scores[(q, c)] > min_score


class TestAucProperties:
    @given(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=30),
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_auc_in_unit_interval(self, a, b):
        auc = auc_from_scores(np.array(a), np.array(b))
        assert 0.0 <= auc <= 1.0

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=20),
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_auc_antisymmetric(self, a, b):
        a_arr, b_arr = np.array(a), np.array(b)
        assert auc_from_scores(a_arr, b_arr) + auc_from_scores(
            b_arr, a_arr
        ) == pytest.approx(1.0)

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_fully_separated_population_wins(self, base):
        low = np.array(base)
        # Shift past the whole range so every high beats every low.
        high = low + (low.max() - low.min()) + 1.0
        assert auc_from_scores(high, low) == 1.0


class TestBootstrapProperties:
    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=40),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_interval_brackets_estimate(self, values, seed):
        rng = np.random.default_rng(seed)
        ci = bootstrap_ci(values, rng, n_boot=100)
        assert ci.low <= ci.estimate + 1e-12
        assert ci.estimate <= ci.high + 1e-12

    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=40),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_interval_within_data_range(self, values, seed):
        rng = np.random.default_rng(seed)
        ci = bootstrap_ci(values, rng, n_boot=100)
        assert min(values) - 1e-12 <= ci.low
        assert ci.high <= max(values) + 1e-12


class TestBlockingProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1e4, allow_nan=False),
                st.floats(1.0, 1e4, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        ),
        st.floats(0, 1e4),
        st.floats(1.0, 1e4),
        st.floats(0, 5e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_index_equals_linear_scan(self, windows, q_start, q_len, min_overlap):
        db = TrajectoryDatabase()
        for i, (start, length) in enumerate(windows):
            ts = np.array([start, start + length])
            db.add(Trajectory(ts, np.zeros(2), np.zeros(2), i))
        index = CandidateIndex(db)
        query = Trajectory(
            np.array([q_start, q_start + q_len]), np.zeros(2), np.zeros(2), "q"
        )
        from_index = set(index.ids_for(query, min_overlap_s=min_overlap))
        linear = {
            t.traj_id
            for t in db
            if min(t.end_time, query.end_time)
            - max(t.start_time, query.start_time)
            >= min_overlap
        }
        assert from_index == linear

    def test_prefilter_consistency_random(self):
        rng = np.random.default_rng(0)
        db = TrajectoryDatabase()
        for i in range(20):
            start = rng.uniform(0, 1e4)
            ts = np.sort(rng.uniform(start, start + 5e3, 5))
            db.add(Trajectory(ts, np.zeros(5), np.zeros(5), i))
        index = CandidateIndex(db)
        prefilter = TimeOverlapPrefilter(min_overlap_s=1000.0)
        for _ in range(10):
            start = rng.uniform(0, 1e4)
            ts = np.sort(rng.uniform(start, start + 4e3, 4))
            query = Trajectory(ts, np.zeros(4), np.zeros(4), "q")
            kept = {c.traj_id for c in db if prefilter.keep(query, c)}
            indexed = set(index.ids_for(query, min_overlap_s=1000.0))
            assert kept <= indexed
