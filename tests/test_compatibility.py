"""Compatibility (paper Definition 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FTLConfig
from repro.core.compatibility import (
    compatibility_many,
    implied_speed,
    incompatibility_many,
    is_compatible,
)
from repro.core.records import Record


@pytest.fixture
def config():
    return FTLConfig(vmax_kph=120.0)


class TestImpliedSpeed:
    def test_basic(self, config):
        a = Record(0.0, 0.0, 0.0)
        b = Record(100.0, 1000.0, 0.0)
        assert implied_speed(a, b, config) == pytest.approx(10.0)

    def test_zero_dt_nonzero_dist_infinite(self, config):
        a = Record(0.0, 0.0, 0.0)
        b = Record(0.0, 1.0, 0.0)
        assert implied_speed(a, b, config) == float("inf")

    def test_coincident_records_zero(self, config):
        a = Record(0.0, 5.0, 5.0)
        assert implied_speed(a, a, config) == 0.0

    def test_symmetric(self, config):
        a = Record(0.0, 0.0, 0.0)
        b = Record(50.0, 400.0, 300.0)
        assert implied_speed(a, b, config) == implied_speed(b, a, config)


class TestIsCompatible:
    def test_paper_example_incompatible(self, config):
        # 70 km in 20 minutes at Vmax 120 kph -> incompatible (paper IV-B).
        a = Record(0.0, 0.0, 0.0)
        b = Record(20 * 60.0, 70_000.0, 0.0)
        assert not is_compatible(a, b, config)

    def test_at_threshold_compatible(self, config):
        # Exactly Vmax: dist = vmax * dt.
        dt = 60.0
        a = Record(0.0, 0.0, 0.0)
        b = Record(dt, config.vmax_mps * dt, 0.0)
        assert is_compatible(a, b, config)

    def test_slow_travel_compatible(self, config):
        a = Record(0.0, 0.0, 0.0)
        b = Record(3600.0, 10_000.0, 0.0)
        assert is_compatible(a, b, config)

    def test_zero_dt_same_point_compatible(self, config):
        a = Record(5.0, 1.0, 2.0)
        b = Record(5.0, 1.0, 2.0)
        assert is_compatible(a, b, config)

    def test_zero_dt_distinct_points_incompatible(self, config):
        a = Record(5.0, 1.0, 2.0)
        b = Record(5.0, 1.0, 3.0)
        assert not is_compatible(a, b, config)

    def test_higher_vmax_is_more_permissive(self):
        a = Record(0.0, 0.0, 0.0)
        b = Record(60.0, 3000.0, 0.0)  # 50 m/s = 180 kph
        assert not is_compatible(a, b, FTLConfig(vmax_kph=120.0))
        assert is_compatible(a, b, FTLConfig(vmax_kph=200.0))


class TestVectorised:
    def test_matches_scalar(self, config):
        rng = np.random.default_rng(0)
        dists = rng.uniform(0, 50_000, 100)
        dts = rng.uniform(0, 3600, 100)
        many = compatibility_many(dists, dts, config)
        for dist, dt, got in zip(dists, dts, many):
            a = Record(0.0, 0.0, 0.0)
            b = Record(dt, dist, 0.0)
            assert got == is_compatible(a, b, config)

    def test_incompatibility_is_negation(self, config):
        dists = np.array([0.0, 1e5])
        dts = np.array([10.0, 10.0])
        comp = compatibility_many(dists, dts, config)
        incomp = incompatibility_many(dists, dts, config)
        assert np.array_equal(comp, ~incomp)

    @given(
        st.floats(0, 1e6, allow_nan=False),
        st.floats(0, 1e5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_dt(self, dist, dt):
        # If a segment is compatible at dt, it stays compatible at 2*dt.
        config = FTLConfig()
        if compatibility_many(np.array([dist]), np.array([dt]), config)[0]:
            assert compatibility_many(
                np.array([dist]), np.array([2 * dt]), config
            )[0]

    @given(
        st.floats(0, 1e6, allow_nan=False),
        st.floats(0.001, 1e5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_dist(self, dist, dt):
        # If incompatible at dist, still incompatible at 2*dist.
        config = FTLConfig()
        if not compatibility_many(np.array([dist]), np.array([dt]), config)[0]:
            assert not compatibility_many(
                np.array([2 * dist]), np.array([dt]), config
            )[0]
