"""Rejection/acceptance model fitting (paper Algorithms 1-2)."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.database import TrajectoryDatabase
from repro.core.models import (
    ACCEPTANCE,
    REJECTION,
    BucketCounts,
    CompatibilityModel,
    _sample_distinct_pairs,
    require_fitted_pair,
)
from repro.core.trajectory import Trajectory
from repro.errors import NotFittedError, ValidationError


def slow_traj(traj_id, n=10, gap=120.0, step=100.0):
    """A trajectory moving well below Vmax (all segments compatible)."""
    ts = gap * np.arange(n)
    xs = step * np.arange(n)
    return Trajectory(ts, xs, np.zeros(n), traj_id)


def fast_traj(traj_id, n=10, gap=60.0, step=50_000.0):
    """A trajectory 'teleporting' 50 km/minute (all segments incompatible)."""
    ts = gap * np.arange(n)
    xs = step * np.arange(n)
    return Trajectory(ts, xs, np.zeros(n), traj_id)


@pytest.fixture
def config():
    return FTLConfig(smoothing=0.0, min_bucket_count=1)


class TestBucketCounts:
    def test_zeros(self):
        counts = BucketCounts.zeros(5)
        assert counts.n_segments == 0

    def test_accumulate(self):
        counts = BucketCounts.zeros(5)
        counts.accumulate(np.array([0, 0, 2]), np.array([True, False, True]))
        assert counts.total.tolist() == [2, 0, 1, 0, 0]
        assert counts.incompatible.tolist() == [1, 0, 1, 0, 0]

    def test_accumulate_ignores_beyond_horizon(self):
        counts = BucketCounts.zeros(3)
        counts.accumulate(np.array([1, 99]), np.array([False, True]))
        assert counts.n_segments == 1

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValidationError):
            BucketCounts(np.array([1]), np.array([2]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            BucketCounts(np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64))


class TestFitRejection:
    def test_slow_trajectories_give_low_probs(self, config):
        db = TrajectoryDatabase([slow_traj(i) for i in range(5)])
        model = CompatibilityModel.fit_rejection([db], config)
        assert model.kind == REJECTION
        assert model.prob(2) == 0.0  # gap=120s -> bucket 2, all compatible

    def test_fast_trajectories_give_high_probs(self, config):
        db = TrajectoryDatabase([fast_traj(i) for i in range(5)])
        model = CompatibilityModel.fit_rejection([db], config)
        assert model.prob(1) == 1.0  # gap=60s -> bucket 1, all incompatible

    def test_pools_across_databases(self, config):
        db1 = TrajectoryDatabase([slow_traj("a")])
        db2 = TrajectoryDatabase([slow_traj("b")])
        model = CompatibilityModel.fit_rejection([db1, db2], config)
        assert model.counts.n_segments == 18

    def test_empty_input_rejected(self, config):
        with pytest.raises(ValidationError):
            CompatibilityModel.fit_rejection([TrajectoryDatabase()], config)

    def test_segment_count_matches(self, config):
        db = TrajectoryDatabase([slow_traj("a", n=7)])
        model = CompatibilityModel.fit_rejection([db], config)
        assert model.n_segments == 6


class TestFitAcceptance:
    def test_kind(self, config, rng):
        db = TrajectoryDatabase([slow_traj(i, gap=600.0) for i in range(6)])
        model = CompatibilityModel.fit_acceptance([db], config, rng)
        assert model.kind == ACCEPTANCE

    def test_needs_two_trajectories(self, config, rng):
        db = TrajectoryDatabase([slow_traj("only")])
        with pytest.raises(ValidationError):
            CompatibilityModel.fit_acceptance([db], config, rng)

    def test_max_pairs_caps_work(self, config, rng):
        db = TrajectoryDatabase([slow_traj(i) for i in range(20)])
        small = CompatibilityModel.fit_acceptance([db], config, rng, max_pairs=3)
        assert small.n_segments > 0

    def test_bad_max_pairs(self, config, rng):
        db = TrajectoryDatabase([slow_traj(i) for i in range(3)])
        with pytest.raises(ValidationError):
            CompatibilityModel.fit_acceptance([db], config, rng, max_pairs=0)

    def test_distant_trajectories_yield_incompatible_buckets(self, config, rng):
        # Two agents parked 40 km apart: every small-gap mutual segment
        # is incompatible.
        a = Trajectory(60.0 * np.arange(10), np.zeros(10), np.zeros(10), "a")
        b = Trajectory(
            60.0 * np.arange(10) + 30.0,
            np.full(10, 40_000.0),
            np.zeros(10),
            "b",
        )
        db = TrajectoryDatabase([a, b])
        model = CompatibilityModel.fit_acceptance([db], config, rng)
        assert model.prob(0) == 1.0  # 30 s gaps -> bucket 0 or 1
        assert model.prob(1) == 1.0


class TestSampleDistinctPairs:
    def test_enumerates_when_small(self):
        rng = np.random.default_rng(0)
        pairs = _sample_distinct_pairs(4, 100, rng)
        assert len(pairs) == 6
        assert all(i < j for i, j in pairs)

    def test_samples_when_large(self):
        rng = np.random.default_rng(0)
        pairs = _sample_distinct_pairs(100, 25, rng)
        assert len(pairs) == 25
        assert len(set(pairs)) == 25
        assert all(i != j for i, j in pairs)

    def test_dense_regime_deterministic(self):
        # max_pairs covers >= half the universe: enumerate + choice
        # without replacement, so the draw is bounded and seeded.
        pairs = _sample_distinct_pairs(5, 8, np.random.default_rng(7))
        assert pairs == [
            (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)
        ]

    def test_sparse_regime_deterministic_and_bounded(self):
        pairs = _sample_distinct_pairs(100, 25, np.random.default_rng(7))
        assert len(pairs) == 25 == len(set(pairs))
        assert pairs == sorted(pairs)
        assert pairs[:5] == [(0, 91), (3, 44), (4, 11), (5, 30), (11, 46)]

    def test_exact_boundary_enumerates(self):
        # C(5, 2) == 10 == max_pairs: the full universe, no sampling.
        pairs = _sample_distinct_pairs(5, 10, np.random.default_rng(0))
        assert pairs == [(i, j) for i in range(5) for j in range(i + 1, 5)]


class TestLookup:
    @pytest.fixture
    def model(self, config):
        db = TrajectoryDatabase([slow_traj(i) for i in range(4)])
        return CompatibilityModel.fit_rejection([db], config)

    def test_beyond_horizon_is_zero(self, model):
        assert model.prob(model.n_buckets) == 0.0
        assert model.prob(10**6) == 0.0

    def test_negative_bucket_rejected(self, model):
        with pytest.raises(ValidationError):
            model.prob(-1)

    def test_probs_for_matches_scalar(self, model):
        buckets = np.array([0, 1, 2, 59, 60, 1000])
        vec = model.probs_for(buckets)
        for b, v in zip(buckets, vec):
            assert v == model.prob(int(b))

    def test_empirical_rate_unobserved_nan(self, model):
        assert np.isnan(model.empirical_rate(55))

    def test_empirical_rate_out_of_range(self, model):
        with pytest.raises(ValidationError):
            model.empirical_rate(1000)

    def test_repr(self, model):
        assert "rejection" in repr(model)


class TestSmoothing:
    def test_jeffreys_keeps_probs_interior(self, rng):
        config = FTLConfig(smoothing=0.5, min_bucket_count=1)
        db = TrajectoryDatabase([slow_traj(i) for i in range(4)])
        model = CompatibilityModel.fit_rejection([db], config)
        observed = model.prob(2)
        assert 0.0 < observed < 1.0  # never exactly 0 despite 0 incompat

    def test_interpolation_fills_gaps(self):
        # Data only in buckets 1 and 5; bucket 3 gets interpolated.
        config = FTLConfig(smoothing=0.0, min_bucket_count=1)
        counts = BucketCounts.zeros(config.n_buckets)
        counts.total[1], counts.incompatible[1] = 10, 10
        counts.total[5], counts.incompatible[5] = 10, 0
        model = CompatibilityModel(REJECTION, counts, config)
        assert model.prob(3) == pytest.approx(0.5)

    def test_edge_extrapolation_constant(self):
        config = FTLConfig(smoothing=0.0, min_bucket_count=1)
        counts = BucketCounts.zeros(config.n_buckets)
        counts.total[5], counts.incompatible[5] = 10, 4
        model = CompatibilityModel(REJECTION, counts, config)
        assert model.prob(0) == pytest.approx(0.4)
        assert model.prob(50) == pytest.approx(0.4)


class TestSerialisation:
    def test_round_trip(self, fitted_models):
        mr, _ma = fitted_models
        clone = CompatibilityModel.from_dict(mr.to_dict())
        assert clone.kind == mr.kind
        buckets = np.arange(clone.n_buckets)
        assert np.allclose(clone.probs_for(buckets), mr.probs_for(buckets))

    def test_malformed_payload(self):
        with pytest.raises(ValidationError):
            CompatibilityModel.from_dict({"kind": "rejection"})

    def test_config_round_trip_preserves_every_field(self):
        # Regression: the hand-maintained config dict in to_dict()
        # silently dropped fields added to FTLConfig (last casualty:
        # shard_cell_size_m), so a persisted model deserialised into a
        # *different* config and require_fitted_pair rejected pairs
        # that were fitted together.  Every field non-default here.
        config = FTLConfig(
            vmax_kph=90.0,
            time_unit_s=30.0,
            horizon_s=1800.0,
            metric="haversine",
            smoothing=1.0,
            min_bucket_count=5,
            max_acceptance_pairs=77,
            pb_backend="normal",
            prob_floor=1e-6,
            kernel_backend="python",
            shard_cell_size_m=250.0,
        )
        model = CompatibilityModel(
            REJECTION, BucketCounts.zeros(config.n_buckets), config
        )
        clone = CompatibilityModel.from_dict(model.to_dict())
        assert clone.config == model.config
        assert clone.config.shard_cell_size_m == 250.0

    def test_unknown_config_key_is_a_clear_newer_version_error(
        self, fitted_models
    ):
        mr, _ma = fitted_models
        payload = mr.to_dict()
        payload["config"]["future_knob"] = 1.0
        with pytest.raises(ValidationError) as err:
            CompatibilityModel.from_dict(payload)
        message = str(err.value)
        assert "future_knob" in message
        assert "newer version" in message


class TestRequireFittedPair:
    def test_accepts_valid_pair(self, fitted_models):
        mr, ma = fitted_models
        assert require_fitted_pair(mr, ma) == (mr, ma)

    def test_rejects_none(self, fitted_models):
        mr, _ma = fitted_models
        with pytest.raises(NotFittedError):
            require_fitted_pair(mr, None)

    def test_rejects_swapped_kinds(self, fitted_models):
        mr, ma = fitted_models
        with pytest.raises(ValidationError):
            require_fitted_pair(ma, mr)

    def test_rejects_mismatched_configs(self, fitted_models, rng):
        mr, _ma = fitted_models
        other_config = FTLConfig(time_unit_s=30.0)
        db = TrajectoryDatabase([slow_traj(i, gap=600.0) for i in range(4)])
        other_ma = CompatibilityModel.fit_acceptance([db], other_config, rng)
        with pytest.raises(ValidationError):
            require_fitted_pair(mr, other_ma)

    def test_constructor_validates_kind(self, config):
        with pytest.raises(ValidationError):
            CompatibilityModel("bogus", BucketCounts.zeros(config.n_buckets), config)

    def test_constructor_validates_bucket_count(self, config):
        with pytest.raises(ValidationError):
            CompatibilityModel(REJECTION, BucketCounts.zeros(3), config)
