"""The linking daemon: batching, endpoints, sessions, drain, bench smoke.

A real :class:`BackgroundServer` on an ephemeral port backs the HTTP
tests; the micro-batcher and session-TTL state machines are additionally
unit-tested without sockets (deterministic clocks, no sleeps).
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.engine import LinkEngine, LinkOptions
from repro.core.naive_bayes import NaiveBayesMatcher
from repro.core.records import Record
from repro.core.streaming import SOURCE_P, SOURCE_Q, StreamingPairEvidence
from repro.core.trajectory import Trajectory
from repro.errors import (
    DeadlineExceededError,
    RemoteServiceError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, LinkServer, ServerConfig
from repro.service.state import Metrics, ServiceState

RANKING = LinkOptions(method="alpha-filter", alpha1=0.0, alpha2=1.0)


@pytest.fixture(scope="module")
def engine(fitted_models):
    mr, ma = fitted_models
    return LinkEngine(mr, ma, options=RANKING)


@pytest.fixture(scope="module")
def pool(small_pair):
    return list(small_pair.q_db)


@pytest.fixture(scope="module")
def queries(small_pair):
    ids = sorted(small_pair.truth)[:4]
    return [small_pair.p_db[qid] for qid in ids]


@pytest.fixture(scope="module")
def server(engine, pool):
    config = ServerConfig(port=0, max_wait_ms=1.0, session_ttl_s=3600.0)
    with BackgroundServer(engine, pool, config=config) as background:
        yield background


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as service_client:
        yield service_client


def _post_raw(address, path, raw: bytes, content_length: int | None = None):
    """POST arbitrary bytes, returning (status, parsed_body, raw_text)."""
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        length = len(raw) if content_length is None else content_length
        conn.putrequest("POST", path)
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(length))
        conn.endheaders()
        conn.send(raw)
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        return response.status, json.loads(text), text
    finally:
        conn.close()


class TestHealthAndMetrics:
    def test_healthz(self, client, pool):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["pool_size"] == len(pool)
        assert health["uptime_s"] >= 0.0

    def test_metrics_shape(self, client):
        client.healthz()
        metrics = client.metrics()
        assert metrics["counters"]["requests_total"] >= 1
        assert "latency" in metrics
        assert metrics["queue_depth"] == 0

    def test_wrong_method_is_structured_405(self, client):
        with pytest.raises(RemoteServiceError) as exc:
            client.request("POST", "/healthz", {"x": 1})
        assert exc.value.status == 405
        assert exc.value.payload["error"]["type"] == "MethodNotAllowed"

    def test_unknown_endpoint_is_structured_404(self, client):
        with pytest.raises(RemoteServiceError) as exc:
            client.request("GET", "/linkz")
        assert exc.value.status == 404
        assert exc.value.payload["error"]["type"] == "NotFound"


class TestLinkEndpoint:
    def test_bit_identical_to_link_batch_resident_pool(
        self, client, engine, pool, queries
    ):
        expected = engine.link_batch(queries, pool)
        got = [client.link(query) for query in queries]
        assert got == expected

    def test_bit_identical_with_explicit_candidates(
        self, client, engine, pool, queries
    ):
        subset = pool[:7]
        expected = engine.link(queries[0], subset)
        assert client.link(queries[0], candidates=subset) == expected

    def test_per_request_options_override(self, client, engine, pool, queries):
        options = LinkOptions(method="naive-bayes", phi_r=0.2, top_k=3)
        expected = engine.link(queries[0], pool, options)
        got = client.link(queries[0], options=options)
        assert got == expected
        assert got.method == "naive-bayes"
        assert len(got) <= 3

    def test_unknown_option_key_is_400(self, client, queries):
        from repro.service.protocol import trajectory_to_wire

        with pytest.raises(RemoteServiceError) as exc:
            client.link_raw(
                {
                    "query": trajectory_to_wire(queries[0]),
                    "options": {"phir": 0.2},
                }
            )
        assert exc.value.status == 400
        assert exc.value.payload["error"]["type"] == "ProtocolError"

    def test_unknown_method_value_is_400(self, client, queries):
        from repro.service.protocol import trajectory_to_wire

        with pytest.raises(RemoteServiceError) as exc:
            client.link_raw(
                {
                    "query": trajectory_to_wire(queries[0]),
                    "options": {"method": "kmeans"},
                }
            )
        assert exc.value.status == 400
        assert exc.value.payload["error"]["type"] == "ValidationError"
        assert "unknown method" in exc.value.payload["error"]["message"]

    def test_malformed_json_is_structured_400(self, server):
        status, body, text = _post_raw(server.address, "/link", b'{"query": ')
        assert status == 400
        assert body["error"]["type"] == "ProtocolError"
        assert "Traceback" not in text

    def test_concurrent_requests_all_bit_identical(
        self, server, engine, pool, queries
    ):
        expected = engine.link_batch(queries, pool)
        n_threads = 8
        results: list[object] = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            with ServiceClient(*server.address) as c:
                barrier.wait()
                results[tid] = c.link(queries[tid % len(queries)])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for tid in range(n_threads):
            assert results[tid] == expected[tid % len(queries)]


class TestAssignEndpoint:
    def test_matches_local_library_assignment(
        self, client, engine, pool, queries
    ):
        """/v1/assign == build_cost_graph + solve over the same pool.

        The CLI path (`ftl assign`) goes through exactly this library
        pipeline, so this also pins CLI/service matching identity.
        """
        from repro.assign import build_cost_graph, solve

        local = solve(
            build_cost_graph(engine, queries, pool, options=RANKING),
            backend="auto",
        )
        data = client.assign(queries)
        assert {
            m["query_id"]: m["candidate_id"] for m in data["matches"]
        } == dict(local.pairs)
        assert {
            m["query_id"]: m["score"] for m in data["matches"]
        } == dict(local.scores)
        assert data["total_score"] == local.total_score
        assert data["solver"] == local.backend
        assert data["n_components"] == local.n_components
        assert data["n_edges"] == local.n_edges
        assert sorted(data["unassigned"]) == sorted(
            local.unassigned([q.traj_id for q in queries])
        )

    def test_solver_override(self, client, engine, pool, queries):
        from repro.assign import build_cost_graph, solve

        local = solve(
            build_cost_graph(engine, queries, pool, options=RANKING),
            backend="greedy",
        )
        data = client.assign(queries, solver="greedy")
        assert data["solver"] == "greedy"
        assert {
            m["query_id"]: m["candidate_id"] for m in data["matches"]
        } == dict(local.pairs)

    def test_min_score_prunes_edges(self, client, queries):
        loose = client.assign(queries, min_score=1e-6)
        tight = client.assign(queries, min_score=0.9)
        assert tight["n_edges"] <= loose["n_edges"]

    def test_unknown_solver_is_400(self, client, queries):
        from repro.errors import RemoteServiceError
        from repro.service.protocol import trajectory_to_wire

        with pytest.raises(RemoteServiceError) as exc:
            client.assign_raw(
                {
                    "queries": [trajectory_to_wire(queries[0])],
                    "solver": "simplex",
                }
            )
        assert exc.value.status == 400

    def test_empty_queries_is_400(self, client):
        from repro.errors import RemoteServiceError

        with pytest.raises(RemoteServiceError) as exc:
            client.assign_raw({"queries": []})
        assert exc.value.status == 400

    def test_duplicate_query_ids_is_400(self, client, queries):
        from repro.errors import RemoteServiceError
        from repro.service.protocol import trajectory_to_wire

        with pytest.raises(RemoteServiceError) as exc:
            client.assign_raw(
                {"queries": [trajectory_to_wire(queries[0])] * 2}
            )
        assert exc.value.status == 400


class TestBodyLimit:
    def test_oversized_body_is_structured_413(self, engine, pool):
        config = ServerConfig(port=0, max_body_bytes=256)
        with BackgroundServer(engine, pool, config=config) as background:
            status, body, text = _post_raw(
                background.address, "/link", b"{" + b" " * 512 + b"}"
            )
        assert status == 413
        assert body["error"]["type"] == "PayloadTooLargeError"
        assert "Traceback" not in text


class _Barrier:
    """A runner that blocks until released, recording batch sizes."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.batch_sizes: list[int] = []

    def __call__(self, payloads):
        self.started.set()
        assert self.release.wait(timeout=30)
        self.batch_sizes.append(len(payloads))
        return [f"done-{p}" for p in payloads]


class TestMicroBatcher:
    def _run(self, coro):
        import asyncio

        return asyncio.run(coro)

    def test_coalesces_concurrent_submissions(self):
        import asyncio

        sizes = []

        def runner(payloads):
            sizes.append(len(payloads))
            return [p * 2 for p in payloads]

        async def main():
            batcher = MicroBatcher(runner, max_batch_size=8, max_wait_ms=200.0)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(8))
            )
            await batcher.stop()
            return results

        assert self._run(main()) == [i * 2 for i in range(8)]
        # All eight were waiting before the first dispatch, so they
        # coalesced into few batches; the first one holds most of them.
        assert sum(sizes) == 8
        assert max(sizes) >= 2

    def test_max_batch_size_is_respected(self):
        import asyncio

        sizes = []

        def runner(payloads):
            sizes.append(len(payloads))
            return payloads

        async def main():
            batcher = MicroBatcher(runner, max_batch_size=3, max_wait_ms=200.0)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            await batcher.stop()

        self._run(main())
        assert sum(sizes) == 10
        assert max(sizes) <= 3

    def test_queue_overflow_is_503(self):
        import asyncio

        blocker = _Barrier()

        async def main():
            batcher = MicroBatcher(
                blocker, max_batch_size=1, max_wait_ms=0.0, queue_limit=2
            )
            await batcher.start()
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.to_thread(blocker.started.wait, 30)
            # The runner is blocked; fill the queue behind it.
            queued = [
                asyncio.ensure_future(batcher.submit(x)) for x in ("b", "c")
            ]
            await asyncio.sleep(0)
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                await batcher.submit("d")
            blocker.release.set()
            results = await asyncio.gather(first, *queued)
            await batcher.stop()
            return results

        assert self._run(main()) == ["done-a", "done-b", "done-c"]

    def test_expired_deadline_is_504_without_engine_time(self):
        import asyncio

        blocker = _Barrier()

        async def main():
            batcher = MicroBatcher(blocker, max_batch_size=1, max_wait_ms=0.0)
            await batcher.start()
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.to_thread(blocker.started.wait, 30)
            late = asyncio.ensure_future(batcher.submit("b", timeout_ms=10.0))
            await asyncio.sleep(0.05)  # deadline passes while queued
            blocker.release.set()
            with pytest.raises(DeadlineExceededError):
                await late
            result = await first
            await batcher.stop()
            return result

        assert self._run(main()) == "done-a"
        # "b" never reached the runner.
        assert blocker.batch_sizes == [1]

    def test_drain_finishes_queued_work_then_refuses(self):
        import asyncio

        def runner(payloads):
            return payloads

        async def main():
            batcher = MicroBatcher(runner, max_batch_size=4, max_wait_ms=50.0)
            await batcher.start()
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(6)]
            await asyncio.sleep(0)  # let the submits enqueue
            await batcher.stop()
            results = await asyncio.gather(*pending)
            with pytest.raises(ServiceOverloadedError, match="draining"):
                await batcher.submit("late")
            return results

        assert self._run(main()) == list(range(6))

    def test_runner_exception_propagates_without_killing_scheduler(self):
        import asyncio

        calls = []

        def runner(payloads):
            calls.append(list(payloads))
            if len(calls) == 1:
                raise RuntimeError("boom")
            return payloads

        async def main():
            batcher = MicroBatcher(runner, max_batch_size=1, max_wait_ms=0.0)
            await batcher.start()
            with pytest.raises(RuntimeError, match="boom"):
                await batcher.submit("a")
            result = await batcher.submit("b")
            await batcher.stop()
            return result

        assert self._run(main()) == "b"

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            MicroBatcher(lambda p: p, max_batch_size=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda p: p, max_wait_ms=-1)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda p: p, queue_limit=0)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _session_records(base_t: float = 0.0):
    """A tiny deterministic (query, candidate) record set."""
    query = [(base_t + 60.0 * i, 100.0 * i, 50.0 * i) for i in range(6)]
    cand = [(base_t + 30.0 + 60.0 * i, 100.0 * i + 40.0, 50.0 * i + 20.0)
            for i in range(6)]
    return query, cand


class TestIngestSessions:
    def test_ingest_decisions_match_batch_matcher(self, client, fitted_models):
        mr, ma = fitted_models
        query, cand = _session_records()
        response = client.ingest(
            "match-batch", query_records=query,
            candidate_records={"c1": cand},
        )
        assert response["n_candidates"] == 1
        (decision,) = response["decisions"]

        # The session linker inherits the server options' phi_r (0.01).
        matcher = NaiveBayesMatcher(mr, ma, phi_r=RANKING.phi_r)
        q_traj = Trajectory([r[0] for r in query], [r[1] for r in query],
                            [r[2] for r in query], "q")
        c_traj = Trajectory([r[0] for r in cand], [r[1] for r in cand],
                            [r[2] for r in cand], "c1")
        expected = matcher.decide(q_traj, c_traj)
        assert decision["same_person"] == expected.same_person
        assert decision["n_mutual"] == expected.n_mutual
        assert decision["n_incompatible"] == expected.n_incompatible
        assert decision["log_posterior_ratio"] == pytest.approx(
            expected.log_posterior_ratio
        )

    def test_sessions_accumulate_and_report(self, client):
        query, cand = _session_records()
        first = client.ingest("acc", query_records=query[:3],
                              candidate_records={"c1": cand[:3]})
        second = client.ingest("acc", query_records=query[3:],
                               candidate_records={"c1": cand[3:]})
        assert first["n_query_records"] == 3
        assert second["n_query_records"] == 6
        assert second["n_records_ingested"] == 12

    def test_record_level_expiry_over_http(self, client, fitted_models):
        mr, ma = fitted_models
        query, cand = _session_records()
        client.ingest("retention", query_records=query,
                      candidate_records={"c1": cand}, decide=False)
        response = client.ingest("retention", expire_before=200.0)
        # Records before t=200 are gone from the session's evidence.
        evidence = StreamingPairEvidence(mr.config)
        for t, x, y in query:
            if t >= 200.0:
                evidence.insert(Record(t, x, y), SOURCE_P)
        for t, x, y in cand:
            if t >= 200.0:
                evidence.insert(Record(t, x, y), SOURCE_Q)
        (decision,) = response["decisions"]
        assert decision["n_mutual"] == evidence.n_mutual
        assert decision["n_incompatible"] == evidence.n_incompatible

    def test_idle_ttl_expiry_equals_fresh_batch_decision(
        self, engine, pool, fitted_models
    ):
        """After TTL expiry a reused session id starts from zero evidence:
        its decision equals a fresh batch-path decision on only the new
        records."""
        mr, ma = fitted_models
        clock = FakeClock()
        state = ServiceState(
            engine=engine, pool=pool, options=LinkOptions(phi_r=0.05),
            session_ttl_s=100.0, clock=clock,
        )
        old_query, old_cand = _session_records(base_t=0.0)
        state.ingest("case", old_query, {"c1": old_cand})
        assert state.sessions["case"].linker.n_query_records == 6

        clock.advance(101.0)
        expired = state.expire_idle_sessions()
        assert expired == ["case"]
        assert "case" not in state.sessions

        new_query, new_cand = _session_records(base_t=10_000.0)
        entry = state.ingest("case", new_query, {"c1": new_cand})
        decision = entry.linker.decision("c1")
        assert entry.linker.n_query_records == len(new_query)

        matcher = NaiveBayesMatcher(mr, ma, phi_r=0.05)
        q_traj = Trajectory([r[0] for r in new_query],
                            [r[1] for r in new_query],
                            [r[2] for r in new_query], "q")
        c_traj = Trajectory([r[0] for r in new_cand],
                            [r[1] for r in new_cand],
                            [r[2] for r in new_cand], "c1")
        fresh = matcher.decide(q_traj, c_traj)
        assert decision.same_person == fresh.same_person
        assert decision.n_mutual == fresh.n_mutual
        assert decision.n_incompatible == fresh.n_incompatible
        assert decision.log_posterior_ratio == pytest.approx(
            fresh.log_posterior_ratio
        )
        assert state.metrics.counter("sessions_expired_total") == 1

    def test_touch_refreshes_ttl(self, engine, pool):
        clock = FakeClock()
        state = ServiceState(
            engine=engine, pool=pool, options=LinkOptions(),
            session_ttl_s=100.0, clock=clock,
        )
        state.ingest("alive", [(0.0, 0.0, 0.0)], {})
        clock.advance(60.0)
        state.ingest("alive", [(60.0, 5.0, 5.0)], {})  # touch
        clock.advance(60.0)
        assert state.expire_idle_sessions() == []
        assert state.sessions["alive"].linker.n_query_records == 2
        clock.advance(101.0)
        assert state.expire_idle_sessions() == ["alive"]


class TestGracefulDrain:
    def test_stop_completes_inflight_requests(self, engine, pool, queries):
        config = ServerConfig(port=0, max_wait_ms=20.0, max_batch_size=4)
        background = BackgroundServer(engine, pool, config=config).start()
        expected = engine.link_batch(queries[:1], pool)[0]
        results: list[object] = []

        def worker() -> None:
            with ServiceClient(*background.address, timeout_s=60) as c:
                try:
                    results.append(c.link(queries[0]))
                except RemoteServiceError as exc:
                    results.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.01)
        background.stop()  # graceful drain
        for t in threads:
            t.join(timeout=60)
        assert len(results) == 4
        for result in results:
            # Each request either completed exactly (drain) or was
            # refused with structured backpressure -- never dropped.
            if isinstance(result, RemoteServiceError):
                assert result.status == 503
            else:
                assert result == expected

    def test_server_address_requires_start(self, engine, pool):
        server = LinkServer(engine, pool)
        with pytest.raises(ValidationError, match="not started"):
            server.address


class TestMetricsRegistry:
    def test_counters_and_latency(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a", 2)
        metrics.observe("lat", 0.002)
        metrics.observe("lat", 0.004)
        snap = metrics.to_dict()
        assert snap["counters"]["a"] == 3
        assert snap["latency"]["lat"]["count"] == 2
        assert snap["latency"]["lat"]["p50_ms"] > 0

    def test_histogram_percentiles_are_monotone(self):
        from repro.service.state import Histogram

        hist = Histogram()
        for ms in (1, 2, 3, 5, 8, 13, 100):
            hist.observe(ms / 1e3)
        assert hist.count == 7
        assert hist.quantile(0.5) <= hist.quantile(0.9) <= hist.quantile(0.99)
        with pytest.raises(ValidationError):
            hist.quantile(1.5)


class TestBenchSmoke:
    def test_service_bench_smoke(self, tmp_path):
        """Tiny run of the load benchmark, emitting BENCH_service.json."""
        from benchmarks.bench_service_load import run_service_load_benchmark

        out = tmp_path / "BENCH_service.json"
        report = run_service_load_benchmark(
            n_candidates=8,
            n_queries=3,
            concurrency_levels=(1, 2),
            requests_per_client=2,
            seed=5,
            sharded_concurrency=2,
            sharded_workers=2,
            out_path=out,
        )
        written = json.loads(out.read_text())
        assert written["n_candidates"] == report["n_candidates"] == 8
        for level in ("1", "2"):
            for mode in ("micro", "batch1"):
                row = written["levels"][level][mode]
                assert row["n_errors"] == 0
                assert row["throughput_rps"] > 0
        overhead = written["span_overhead"]
        for label in ("spans_on", "spans_off"):
            assert overhead[label]["n_errors"] == 0
            assert overhead[label]["throughput_rps"] > 0
        assert "regression_pct" in overhead
        sharded = written["sharded_scaling"]
        assert sharded["n_workers"] == 2
        assert sharded["cpu_count"] >= 1
        for row in sharded["workers"].values():
            assert row["n_errors"] == 0
            assert row["throughput_rps"] > 0
        sustained = written["sustained_ingest"]
        assert sustained["n_updates"] >= sustained["rounds"]
        assert sustained["records_per_s"] > 0
        assert sustained["staleness_p99_ms"] >= sustained["staleness_p50_ms"]
        assert (
            sustained["rescored_pairs_total"]
            < sustained["full_recompute_pairs"]
        )


class TestStoreBackedService:
    """Provenance reporting and ingest-session flushes into a store."""

    def test_health_reports_in_memory_without_store(self, client):
        health = client.healthz()
        assert health["data_source"] == {"source": "in-memory"}

    def test_health_reports_store_provenance(self, engine, pool, small_pair,
                                             tmp_path):
        from repro.store import build_store

        store = build_store(tmp_path / "q-store", small_pair.q_db)
        provenance = {
            "source": "store",
            "path": str(store.path),
            "format_version": store.manifest.format_version,
            "generation": store.generation,
        }
        config = ServerConfig(port=0)
        with BackgroundServer(engine, pool, config=config, store=store,
                              provenance=provenance) as background:
            with ServiceClient(*background.address) as c:
                health = c.healthz()
        assert health["data_source"]["source"] == "store"
        assert health["data_source"]["path"] == str(store.path)
        assert health["data_source"]["generation"] == 1

    def test_flush_appends_buffered_records_to_store(self, engine, pool,
                                                     tmp_path):
        from repro.store import TrajectoryStore, open_store

        store = TrajectoryStore.create(tmp_path / "s")
        state = ServiceState(
            engine=engine, pool=pool, options=LinkOptions(),
            clock=FakeClock(), store=store,
        )
        query, cand = _session_records()
        state.ingest("flushy", query, {"c1": cand[:4]})
        state.ingest("flushy", [], {"c1": cand[4:], "c2": cand[:2]})
        flushed = state.flush_session("flushy")
        assert flushed == len(cand) + 2
        persisted = open_store(tmp_path / "s").load()
        assert sorted(map(str, persisted.ids())) == ["c1", "c2"]
        assert len(persisted["c1"]) == len(cand)
        # a second flush with nothing new buffered is a no-op
        assert state.flush_session("flushy") == 0
        assert state.metrics.counter("store_flushes_total") == 1
        assert state.metrics.counter("store_flushed_records_total") == flushed

    def test_flush_requires_store_and_known_session(self, engine, pool,
                                                    tmp_path):
        from repro.store import TrajectoryStore

        bare = ServiceState(engine=engine, pool=pool, options=LinkOptions(),
                            clock=FakeClock())
        with pytest.raises(ValidationError, match="no trajectory store"):
            bare.flush_session("any")
        stored = ServiceState(
            engine=engine, pool=pool, options=LinkOptions(),
            clock=FakeClock(),
            store=TrajectoryStore.create(tmp_path / "s"),
        )
        with pytest.raises(ValidationError, match="unknown ingest session"):
            stored.flush_session("ghost")

    def test_ttl_expiry_auto_flushes_to_store(self, engine, pool, tmp_path):
        from repro.store import TrajectoryStore, open_store

        clock = FakeClock()
        state = ServiceState(
            engine=engine, pool=pool, options=LinkOptions(),
            session_ttl_s=100.0, clock=clock,
            store=TrajectoryStore.create(tmp_path / "s"),
        )
        query, cand = _session_records()
        state.ingest("drop-me", query, {"c9": cand})
        clock.advance(101.0)
        assert state.expire_idle_sessions() == ["drop-me"]
        persisted = open_store(tmp_path / "s").load()
        assert list(map(str, persisted.ids())) == ["c9"]
        assert len(persisted["c9"]) == len(cand)

    def test_flush_over_http(self, engine, pool, tmp_path):
        from repro.store import TrajectoryStore, open_store

        store = TrajectoryStore.create(tmp_path / "s")
        config = ServerConfig(port=0)
        query, cand = _session_records()
        with BackgroundServer(engine, pool, config=config,
                              store=store) as background:
            with ServiceClient(*background.address) as c:
                first = c.ingest("wire", query_records=query,
                                 candidate_records={"c1": cand},
                                 decide=False)
                assert "flushed_records" not in first
                second = c.ingest("wire", decide=False, flush=True)
                assert second["flushed_records"] == len(cand)
        persisted = open_store(tmp_path / "s").load()
        assert len(persisted["c1"]) == len(cand)

    def test_records_not_buffered_without_store(self, engine, pool):
        state = ServiceState(engine=engine, pool=pool, options=LinkOptions(),
                             clock=FakeClock())
        query, cand = _session_records()
        state.ingest("plain", query, {"c1": cand})
        assert state.sessions["plain"].pending == {}

    def test_ttl_expiry_counters_and_flushed_records_reach_link(
        self, engine, small_pair, tmp_path
    ):
        """Idle-TTL expiry bumps the expected counters, and the expired
        session's auto-flushed records become linkable: after
        ``refresh_pool`` a subsequent ``/link``-path call over the
        resident pool ranks the flushed candidate."""
        from repro.core.engine import LinkRequest
        from repro.store import build_store

        store = build_store(tmp_path / "q-store", small_pair.q_db)
        clock = FakeClock()
        state = ServiceState(
            engine=engine, pool=list(store.load()), options=RANKING,
            session_ttl_s=100.0, clock=clock, store=store,
        )
        query, cand = _session_records(base_t=5_000.0)
        state.ingest("expiring", query, {"flushed-cand": cand})
        before = {
            name: state.metrics.counter(name)
            for name in ("sessions_expired_total", "store_flushes_total",
                         "store_flushed_records_total", "pool_refreshes_total")
        }

        clock.advance(101.0)
        assert state.expire_idle_sessions() == ["expiring"]
        counters = state.metrics
        assert counters.counter("sessions_expired_total") == (
            before["sessions_expired_total"] + 1
        )
        assert counters.counter("store_flushes_total") == (
            before["store_flushes_total"] + 1
        )
        assert counters.counter("store_flushed_records_total") == (
            before["store_flushed_records_total"] + len(cand)
        )

        # Not in the resident pool until it is refreshed from the store.
        assert all(t.traj_id != "flushed-cand" for t in state.pool)
        n = state.refresh_pool()
        assert n == len(state.pool)
        assert counters.counter("pool_refreshes_total") == (
            before["pool_refreshes_total"] + 1
        )
        assert any(str(t.traj_id) == "flushed-cand" for t in state.pool)

        # The serving path (link_requests over the refreshed resident
        # pool, exactly what /link executes) now ranks the candidate.
        probe = Trajectory([r[0] for r in cand], [r[1] for r in cand],
                           [r[2] for r in cand], "probe")
        (result,) = state.engine.link_requests(
            [LinkRequest(query=probe)], default_pool=state.pool,
            options=RANKING,
        )
        assert "flushed-cand" in [str(c.candidate_id) for c in result.candidates]

    def test_refresh_pool_requires_store(self, engine, pool):
        state = ServiceState(engine=engine, pool=pool, options=LinkOptions(),
                             clock=FakeClock())
        with pytest.raises(ValidationError, match="no trajectory store"):
            state.refresh_pool()


class TestModelHotSwap:
    """/v1/admin/model: artifact-backed serving and atomic hot-swap."""

    @pytest.fixture
    def model_store(self, small_pair, tmp_path):
        """A store over the SB-mini candidate pool holding two distinct
        fitted artifacts, the first one active."""
        import numpy as np

        from repro.config import FTLConfig
        from repro.store import build_store, fit_model_artifact

        store = build_store(tmp_path / "q-store", small_pair.q_db)
        ftl_config = FTLConfig()
        first = fit_model_artifact(
            [small_pair.q_db], ftl_config, np.random.default_rng(0),
            fitted_at=100.0,
        )
        second = fit_model_artifact(
            [small_pair.q_db], ftl_config, np.random.default_rng(1),
            max_pairs=5, fitted_at=200.0,
        )
        assert first.artifact_id != second.artifact_id
        store.save_model(first, created_at=100.0, activate=True)
        store.save_model(second, created_at=200.0)
        return store, first, second

    def _serve(self, store, artifact, workers=1):
        engine = LinkEngine(
            artifact.rejection, artifact.acceptance, options=RANKING
        )
        config = ServerConfig(port=0, workers=workers, max_wait_ms=1.0)
        return BackgroundServer(
            engine, list(store.load()), config=config, store=store,
            model_artifact_id=artifact.artifact_id,
        )

    def test_info_reports_serving_and_registry(self, model_store):
        store, first, second = model_store
        with self._serve(store, first) as background:
            with ServiceClient(*background.address) as c:
                info = c.model_info()
                health = c.healthz()
        assert info["serving_artifact"] == first.artifact_id
        assert info["store_active_model"] == first.artifact_id
        assert {a["id"] for a in info["artifacts"]} == {
            first.artifact_id, second.artifact_id
        }
        assert health["model_artifact"] == first.artifact_id

    def test_swap_without_store_is_conflict(self, client):
        with pytest.raises(RemoteServiceError) as exc:
            client.swap_model()
        assert exc.value.status == 409
        assert "store-backed" in str(exc.value)

    def test_swap_unknown_artifact_rejected(self, model_store):
        store, first, _second = model_store
        with self._serve(store, first) as background:
            with ServiceClient(*background.address) as c:
                with pytest.raises(RemoteServiceError) as exc:
                    c.swap_model("m-0000000000000000")
                assert exc.value.status == 400
                # the failed swap leaves the serving model untouched
                assert c.healthz()["model_artifact"] == first.artifact_id

    def test_swap_is_noop_when_already_serving(self, model_store):
        store, first, _second = model_store
        with self._serve(store, first) as background:
            with ServiceClient(*background.address) as c:
                out = c.swap_model(first.artifact_id)
        assert out["swapped"] is False
        assert out["artifact"] == first.artifact_id

    def test_sharded_swap_serves_bit_identical_rankings(
        self, model_store, small_pair
    ):
        """The acceptance criterion: after hot-swapping a 2-worker
        sharded daemon onto a refit artifact, /v1/link responses are
        bit-identical (ids AND scores) to a fresh single-process engine
        built from the same artifact."""
        store, first, second = model_store
        queries = [
            small_pair.p_db[qid] for qid in sorted(small_pair.truth)[:3]
        ]
        fresh = LinkEngine(
            second.rejection, second.acceptance, options=RANKING
        )
        with self._serve(store, first, workers=2) as background:
            with ServiceClient(*background.address) as c:
                out = c.swap_model(second.artifact_id)
                assert out["swapped"] is True
                assert out["previous"] == first.artifact_id
                assert out["provenance"]["dataset_hash"] == \
                    second.provenance.dataset_hash
                assert c.healthz()["model_artifact"] == second.artifact_id
                for query in queries:
                    wire = c.link(query, options=RANKING)
                    local = fresh.link(
                        query, list(small_pair.q_db), options=RANKING
                    )
                    assert [str(x.candidate_id) for x in wire.candidates] \
                        == [str(x.candidate_id) for x in local.candidates]
                    assert [x.score for x in wire.candidates] \
                        == [x.score for x in local.candidates]

    def test_swap_to_store_active_artifact(self, model_store):
        """POST {} re-reads the manifest: an ``ftl model activate`` run
        by another process is picked up without naming the id."""
        store, first, second = model_store
        with self._serve(store, first) as background:
            store.activate_model(second.artifact_id)
            with ServiceClient(*background.address) as c:
                out = c.swap_model()
                assert out["swapped"] is True
                assert out["artifact"] == second.artifact_id
                assert c.healthz()["model_artifact"] == second.artifact_id

    def test_no_requests_dropped_during_swap(self, model_store, small_pair):
        """Clients hammering /v1/link through a swap see only 200s or
        the documented 503 + Retry-After drain signal — never a dropped
        connection or 5xx crash; and the swap itself succeeds."""
        store, first, second = model_store
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        stop = threading.Event()
        outcomes: list = []

        def hammer():
            with ServiceClient(*background.address) as c:
                while not stop.is_set():
                    try:
                        c.link(query, options=RANKING)
                        outcomes.append(200)
                    except RemoteServiceError as exc:
                        outcomes.append(exc.status)
                        time.sleep(0.01)

        with self._serve(store, first, workers=2) as background:
            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                time.sleep(0.1)
                with ServiceClient(*background.address) as admin:
                    out = admin.swap_model(second.artifact_id)
                time.sleep(0.1)
            finally:
                stop.set()
                for t in threads:
                    t.join()
        assert out["swapped"] is True
        assert outcomes.count(200) > 0
        assert set(outcomes) <= {200, 503}

    def test_drift_gauges_in_exposition(self, model_store, small_pair):
        """ftl_model_drift{model=...} renders (sharded path included)
        and the exposition stays valid; traffic populates the evidence
        histograms that feed it."""
        from repro.obs.prometheus import validate_exposition

        store, first, _second = model_store
        query = small_pair.p_db[sorted(small_pair.truth)[0]]
        with self._serve(store, first, workers=2) as background:
            with ServiceClient(*background.address) as c:
                for _ in range(3):
                    c.link(query, options=RANKING)
                text = c.metrics_text()
        assert 'ftl_model_drift{model="rejection"}' in text
        assert 'ftl_model_drift{model="acceptance"}' in text
        assert validate_exposition(text) == []
        drift = {
            line.split(" ")[0]: float(line.split(" ")[1])
            for line in text.splitlines()
            if line.startswith("ftl_model_drift{")
        }
        for value in drift.values():
            assert 0.0 <= value <= 1.0
