"""FTLConfig validation and bucketing."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, FTLConfig, PB_BACKENDS
from repro.errors import ValidationError


class TestDefaults:
    def test_paper_defaults(self):
        assert DEFAULT_CONFIG.vmax_kph == 120.0
        assert DEFAULT_CONFIG.time_unit_s == 60.0
        assert DEFAULT_CONFIG.horizon_s == 3600.0

    def test_vmax_mps(self):
        assert DEFAULT_CONFIG.vmax_mps == pytest.approx(120 / 3.6)

    def test_n_buckets(self):
        assert DEFAULT_CONFIG.n_buckets == 60

    def test_n_buckets_rounds_up(self):
        config = FTLConfig(time_unit_s=70.0, horizon_s=3600.0)
        assert config.n_buckets == 52  # ceil(3600/70)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.vmax_kph = 10.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vmax_kph": 0.0},
            {"vmax_kph": -5.0},
            {"time_unit_s": 0.0},
            {"horizon_s": 30.0, "time_unit_s": 60.0},
            {"metric": "nope"},
            {"smoothing": -0.1},
            {"min_bucket_count": -1},
            {"max_acceptance_pairs": 0},
            {"pb_backend": "magic"},
            {"prob_floor": 0.0},
            {"prob_floor": 0.7},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            FTLConfig(**kwargs)

    @pytest.mark.parametrize("backend", PB_BACKENDS)
    def test_accepts_all_backends(self, backend):
        assert FTLConfig(pb_backend=backend).pb_backend == backend

    def test_haversine_metric_accepted(self):
        assert FTLConfig(metric="haversine").metric == "haversine"


class TestBucketing:
    def test_bucket_of_rounds_to_nearest(self):
        config = FTLConfig(time_unit_s=60.0)
        assert config.bucket_of(0.0) == 0
        assert config.bucket_of(29.0) == 0
        assert config.bucket_of(31.0) == 1
        assert config.bucket_of(60.0) == 1
        assert config.bucket_of(95.0) == 2

    def test_bucket_of_negative_rejected(self):
        with pytest.raises(ValidationError):
            DEFAULT_CONFIG.bucket_of(-1.0)

    def test_buckets_of_matches_scalar(self):
        config = FTLConfig(time_unit_s=30.0)
        dts = np.array([0.0, 10.0, 29.0, 31.0, 300.0, 7200.0])
        vec = config.buckets_of(dts)
        for dt, bucket in zip(dts, vec):
            assert bucket == config.bucket_of(float(dt))

    def test_buckets_of_dtype(self):
        assert DEFAULT_CONFIG.buckets_of(np.array([1.0])).dtype == np.int64


class TestWithUpdates:
    def test_replaces_field(self):
        updated = DEFAULT_CONFIG.with_updates(vmax_kph=140.0)
        assert updated.vmax_kph == 140.0
        assert updated.time_unit_s == DEFAULT_CONFIG.time_unit_s

    def test_validates_replacement(self):
        with pytest.raises(ValidationError):
            DEFAULT_CONFIG.with_updates(vmax_kph=-1.0)

    def test_original_untouched(self):
        DEFAULT_CONFIG.with_updates(time_unit_s=30.0)
        assert DEFAULT_CONFIG.time_unit_s == 60.0
