"""Model diagnostics and discriminability."""

import numpy as np
import pytest

from repro.config import FTLConfig
from repro.core.diagnostics import (
    _bernoulli_kl,
    bucket_divergence,
    discriminability,
    format_model_table,
    model_table,
)
from repro.core.models import ACCEPTANCE, REJECTION, BucketCounts, CompatibilityModel
from repro.errors import ValidationError


def model_with_probs(kind, probs, config, count=1000):
    counts = BucketCounts.zeros(config.n_buckets)
    counts.total[:] = count
    probs = np.broadcast_to(np.asarray(probs), (config.n_buckets,))
    counts.incompatible[:] = np.round(probs * count).astype(np.int64)
    return CompatibilityModel(kind, counts, config)


@pytest.fixture
def config():
    return FTLConfig(smoothing=0.0, min_bucket_count=1)


class TestBernoulliKL:
    def test_zero_when_equal(self):
        assert _bernoulli_kl(0.3, 0.3) == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_different(self):
        assert _bernoulli_kl(0.1, 0.9) > 0

    def test_hand_computed(self):
        import math

        p, q = 0.2, 0.5
        expected = p * math.log(p / q) + (1 - p) * math.log((1 - p) / (1 - q))
        assert _bernoulli_kl(p, q) == pytest.approx(expected)

    def test_extreme_probs_clamped(self):
        assert np.isfinite(_bernoulli_kl(0.0, 1.0))


class TestBucketDivergence:
    def test_identical_models_zero(self, config):
        mr = model_with_probs(REJECTION, 0.3, config)
        ma = model_with_probs(ACCEPTANCE, 0.3, config)
        assert np.allclose(bucket_divergence(mr, ma), 0.0, atol=1e-12)

    def test_separated_models_positive(self, config):
        mr = model_with_probs(REJECTION, 0.02, config)
        ma = model_with_probs(ACCEPTANCE, 0.8, config)
        divergence = bucket_divergence(mr, ma)
        assert np.all(divergence > 1.0)

    def test_kind_validation(self, config):
        mr = model_with_probs(REJECTION, 0.1, config)
        ma = model_with_probs(ACCEPTANCE, 0.5, config)
        with pytest.raises(ValidationError):
            bucket_divergence(ma, mr)

    def test_fitted_models_have_positive_divergence(self, fitted_models):
        mr, ma = fitted_models
        divergence = bucket_divergence(mr, ma)
        # The informative low buckets must discriminate.
        assert divergence[:10].mean() > 0.5


class TestDiscriminability:
    def test_default_weights(self, fitted_models):
        mr, ma = fitted_models
        value = discriminability(mr, ma)
        assert value > 0.1  # clearly separable on the small scenario

    def test_custom_weights(self, config):
        mr = model_with_probs(REJECTION, 0.02, config)
        ma = model_with_probs(ACCEPTANCE, 0.8, config)
        weights = np.zeros(config.n_buckets)
        weights[0] = 1.0
        value = discriminability(mr, ma, gap_weights=weights)
        assert value == pytest.approx(bucket_divergence(mr, ma)[0])

    def test_weight_validation(self, config):
        mr = model_with_probs(REJECTION, 0.02, config)
        ma = model_with_probs(ACCEPTANCE, 0.8, config)
        with pytest.raises(ValidationError):
            discriminability(mr, ma, gap_weights=np.ones(3))
        with pytest.raises(ValidationError):
            discriminability(mr, ma, gap_weights=-np.ones(config.n_buckets))

    def test_concentrating_weight_on_best_bucket_dominates(self, fitted_models):
        mr, ma = fitted_models
        divergence = bucket_divergence(mr, ma)
        best = int(np.argmax(divergence))
        weights = np.zeros(mr.n_buckets)
        weights[best] = 1.0
        assert discriminability(mr, ma, weights) >= discriminability(mr, ma)


class TestModelTable:
    def test_rows_and_format(self, fitted_models):
        mr, ma = fitted_models
        rows = model_table(mr, ma, max_buckets=10)
        assert len(rows) == 10
        assert rows[0].bucket == 0
        assert rows[3].gap_seconds == 3 * mr.config.time_unit_s
        text = format_model_table(rows)
        assert "KL nats" in text
        assert len(text.splitlines()) == 11

    def test_full_table_length(self, fitted_models):
        mr, ma = fitted_models
        assert len(model_table(mr, ma)) == mr.n_buckets
