"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable-install support (it falls back to the legacy
``setup.py develop`` path with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
